"""Hash index: an equality-only index over table rows.

Point lookups on node identifiers (the ``TVisited(nid)`` unique index) do
not need range scans, so a hash index is a natural alternative to the B+
tree.  The relational engine lets callers pick either structure when
creating an index.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.errors import DuplicateKeyError


class HashIndex:
    """A key -> list-of-values map with the same surface as the B+ tree
    (minus ordered scans)."""

    def __init__(self, unique: bool = False) -> None:
        self.unique = unique
        self._buckets: Dict[Any, List[Any]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key``.

        Raises:
            DuplicateKeyError: when the index is unique and ``key`` exists.
        """
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [value]
        else:
            if self.unique:
                raise DuplicateKeyError(f"duplicate key {key!r} in unique index")
            bucket.append(value)
        self._size += 1

    def search(self, key: Any) -> List[Any]:
        """Return the values stored for ``key`` (empty list if absent)."""
        return list(self._buckets.get(key, ()))

    def contains(self, key: Any) -> bool:
        """Whether any entry exists for ``key``."""
        return key in self._buckets

    def delete(self, key: Any, value: Any = None) -> int:
        """Remove entries for ``key`` (all of them, or one given ``value``).

        Returns the number of removed entries.
        """
        bucket = self._buckets.get(key)
        if bucket is None:
            return 0
        if value is None:
            removed = len(bucket)
            del self._buckets[key]
        else:
            try:
                bucket.remove(value)
            except ValueError:
                return 0
            removed = 1
            if not bucket:
                del self._buckets[key]
        self._size -= removed
        return removed

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs in arbitrary order."""
        for key, bucket in self._buckets.items():
            for value in bucket:
                yield key, value

    def keys(self) -> Iterator[Any]:
        """Yield distinct keys in arbitrary order."""
        return iter(self._buckets)

    def clear(self) -> None:
        """Remove every entry."""
        self._buckets.clear()
        self._size = 0
