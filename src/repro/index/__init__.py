"""Index substrate: B+ tree and hash indexes over table rows.

Indexes map column keys to :class:`~repro.storage.page.RecordId` values (or,
for clustered tables, are paired with a key-ordered heap layout).  The paper
builds a clustered index on ``TEdges(fid)`` / ``TOutSegs(fid)`` and a unique
index on ``TVisited(nid)``; Figure 8(c) compares clustered, non-clustered and
no-index configurations, all of which are expressible with these classes.
"""

from repro.index.btree import BPlusTree
from repro.index.hash_index import HashIndex

__all__ = ["BPlusTree", "HashIndex"]
