"""An order-``m`` B+ tree supporting duplicate keys and range scans.

The tree maps orderable keys to lists of values (typically
:class:`~repro.storage.page.RecordId` objects).  Leaves are chained so range
scans and full-order iteration are sequential.  Nodes live in memory, which
models the common situation where the hot upper levels of an index stay in
the database buffer; the I/O that experiments measure is the data-page I/O
performed after the index lookup.

Deletion removes the entry from its leaf without rebalancing (lazy
deletion).  This keeps the structure simple while preserving the search
invariants; the tables in this library delete rarely (TVisited is truncated
wholesale between queries).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import DuplicateKeyError

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: List[Any] = []


class _LeafNode(_Node):
    __slots__ = ("values", "next_leaf")

    def __init__(self) -> None:
        super().__init__()
        self.values: List[List[Any]] = []
        self.next_leaf: Optional["_LeafNode"] = None


class _InnerNode(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: List[_Node] = []


class BPlusTree:
    """B+ tree index.

    Args:
        order: maximal number of keys per node before it splits.
        unique: when ``True``, inserting an existing key raises
            :class:`~repro.errors.DuplicateKeyError`.
    """

    def __init__(self, order: int = DEFAULT_ORDER, unique: bool = False) -> None:
        if order < 3:
            raise ValueError("B+ tree order must be at least 3")
        self.order = order
        self.unique = unique
        self._root: _Node = _LeafNode()
        self._size = 0

    # -- basic properties ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone leaf)."""
        levels = 1
        node = self._root
        while isinstance(node, _InnerNode):
            levels += 1
            node = node.children[0]
        return levels

    # -- search --------------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _LeafNode:
        node = self._root
        while isinstance(node, _InnerNode):
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        assert isinstance(node, _LeafNode)
        return node

    def search(self, key: Any) -> List[Any]:
        """Return the list of values stored for ``key`` (empty if absent)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def contains(self, key: Any) -> bool:
        """Whether any entry exists for ``key``."""
        return bool(self.search(key))

    def range_scan(self, low: Optional[Any] = None, high: Optional[Any] = None,
                   include_low: bool = True,
                   include_high: bool = True) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high`` in key order.

        ``None`` bounds are open ended.  Bound inclusivity is controlled by
        ``include_low`` / ``include_high``.
        """
        if low is None:
            leaf: Optional[_LeafNode] = self._leftmost_leaf()
            start_index = 0
        else:
            leaf = self._find_leaf(low)
            start_index = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            for index in range(start_index, len(leaf.keys)):
                key = leaf.keys[index]
                if low is not None:
                    if key < low or (not include_low and key == low):
                        continue
                if high is not None:
                    if key > high or (not include_high and key == high):
                        return
                for value in leaf.values[index]:
                    yield key, value
            leaf = leaf.next_leaf
            start_index = 0

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield every ``(key, value)`` pair in key order."""
        return self.range_scan()

    def keys(self) -> Iterator[Any]:
        """Yield distinct keys in order."""
        leaf: Optional[_LeafNode] = self._leftmost_leaf()
        while leaf is not None:
            for key in leaf.keys:
                yield key
            leaf = leaf.next_leaf

    def min_key(self) -> Optional[Any]:
        """Smallest key, or ``None`` for an empty tree."""
        leaf = self._leftmost_leaf()
        return leaf.keys[0] if leaf.keys else None

    def max_key(self) -> Optional[Any]:
        """Largest key, or ``None`` for an empty tree."""
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[-1]
        assert isinstance(node, _LeafNode)
        return node.keys[-1] if node.keys else None

    def _leftmost_leaf(self) -> _LeafNode:
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
        assert isinstance(node, _LeafNode)
        return node

    # -- insertion --------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key``.

        Raises:
            DuplicateKeyError: when the tree is unique and ``key`` exists.
        """
        split = self._insert_into(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _InnerNode()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert_into(self, node: _Node, key: Any,
                     value: Any) -> Optional[Tuple[Any, _Node]]:
        if isinstance(node, _LeafNode):
            return self._insert_into_leaf(node, key, value)
        assert isinstance(node, _InnerNode)
        index = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) <= self.order:
            return None
        return self._split_inner(node)

    def _insert_into_leaf(self, leaf: _LeafNode, key: Any,
                          value: Any) -> Optional[Tuple[Any, _Node]]:
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            if self.unique:
                raise DuplicateKeyError(f"duplicate key {key!r} in unique index")
            leaf.values[index].append(value)
            self._size += 1
            return None
        leaf.keys.insert(index, key)
        leaf.values.insert(index, [value])
        self._size += 1
        if len(leaf.keys) <= self.order:
            return None
        return self._split_leaf(leaf)

    def _split_leaf(self, leaf: _LeafNode) -> Tuple[Any, _Node]:
        middle = len(leaf.keys) // 2
        right = _LeafNode()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_inner(self, node: _InnerNode) -> Tuple[Any, _Node]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _InnerNode()
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right

    # -- deletion ----------------------------------------------------------------------

    def delete(self, key: Any, value: Any = None) -> int:
        """Remove entries for ``key``.

        When ``value`` is given, only that value is removed (one occurrence);
        otherwise every value under ``key`` is removed.  Returns the number
        of removed entries.  Missing keys return 0.
        """
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return 0
        if value is None:
            removed = len(leaf.values[index])
            del leaf.keys[index]
            del leaf.values[index]
        else:
            try:
                leaf.values[index].remove(value)
            except ValueError:
                return 0
            removed = 1
            if not leaf.values[index]:
                del leaf.keys[index]
                del leaf.values[index]
        self._size -= removed
        return removed

    def clear(self) -> None:
        """Remove every entry."""
        self._root = _LeafNode()
        self._size = 0

    # -- validation (used by property-based tests) ---------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation."""
        self._check_node(self._root, low=None, high=None, is_root=True)
        # Leaf chain must produce sorted keys and cover the full key set.
        chained = [key for key in self.keys()]
        assert chained == sorted(chained), "leaf chain is not sorted"

    def _check_node(self, node: _Node, low: Optional[Any], high: Optional[Any],
                    is_root: bool) -> None:
        assert node.keys == sorted(node.keys), "node keys out of order"
        if not is_root:
            assert len(node.keys) <= self.order, "node overflow"
        for key in node.keys:
            if low is not None:
                assert key >= low, "key below subtree lower bound"
            if high is not None:
                assert key <= high, "key above subtree upper bound"
        if isinstance(node, _InnerNode):
            assert len(node.children) == len(node.keys) + 1, "child count mismatch"
            bounds = [low] + list(node.keys) + [high]
            for child, (child_low, child_high) in zip(
                node.children, zip(bounds[:-1], bounds[1:])
            ):
                self._check_node(child, child_low, child_high, is_root=False)
