"""In-memory bi-directional Dijkstra (the paper's MBDJ competitor).

Forward search from the source over outgoing edges, backward search from the
target over incoming edges, alternating by frontier size; terminates when
``l_f + l_b >= minCost`` — the same rule the relational bi-directional
algorithms use (Section 4.1 of the paper).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.errors import NodeNotFoundError, PathNotFoundError
from repro.graph.model import Graph
from repro.memory.dijkstra import DijkstraResult


def bidirectional_dijkstra(graph: Graph, source: int, target: int) -> DijkstraResult:
    """Compute the shortest path from ``source`` to ``target`` (MBDJ).

    Raises:
        NodeNotFoundError: if either endpoint is missing.
        PathNotFoundError: if the target is unreachable.
    """
    for node in (source, target):
        if not graph.has_node(node):
            raise NodeNotFoundError(f"node {node} is not in the graph")
    if source == target:
        return DijkstraResult(source, target, 0.0, [source], settled=1)

    forward_dist: Dict[int, float] = {source: 0.0}
    backward_dist: Dict[int, float] = {target: 0.0}
    forward_pred: Dict[int, int] = {source: source}
    backward_succ: Dict[int, int] = {target: target}
    forward_done: set[int] = set()
    backward_done: set[int] = set()
    forward_heap: List[Tuple[float, int]] = [(0.0, source)]
    backward_heap: List[Tuple[float, int]] = [(0.0, target)]

    best_cost = float("inf")
    meeting_node = -1
    settled = 0

    def try_improve(node: int) -> None:
        nonlocal best_cost, meeting_node
        if node in forward_dist and node in backward_dist:
            total = forward_dist[node] + backward_dist[node]
            if total < best_cost:
                best_cost = total
                meeting_node = node

    while forward_heap and backward_heap:
        forward_min = forward_heap[0][0]
        backward_min = backward_heap[0][0]
        if forward_min + backward_min >= best_cost:
            break
        if forward_min <= backward_min:
            distance, node = heapq.heappop(forward_heap)
            if node in forward_done:
                continue
            forward_done.add(node)
            settled += 1
            for neighbor, cost in graph.out_edges(node):
                candidate = distance + cost
                if candidate < forward_dist.get(neighbor, float("inf")):
                    forward_dist[neighbor] = candidate
                    forward_pred[neighbor] = node
                    heapq.heappush(forward_heap, (candidate, neighbor))
                    try_improve(neighbor)
        else:
            distance, node = heapq.heappop(backward_heap)
            if node in backward_done:
                continue
            backward_done.add(node)
            settled += 1
            for neighbor, cost in graph.in_edges(node):
                candidate = distance + cost
                if candidate < backward_dist.get(neighbor, float("inf")):
                    backward_dist[neighbor] = candidate
                    backward_succ[neighbor] = node
                    heapq.heappush(backward_heap, (candidate, neighbor))
                    try_improve(neighbor)

    if meeting_node < 0 or best_cost == float("inf"):
        raise PathNotFoundError(f"no path from {source} to {target}")

    forward_path: List[int] = [meeting_node]
    node = meeting_node
    while node != source:
        node = forward_pred[node]
        forward_path.append(node)
    forward_path.reverse()
    node = meeting_node
    while node != target:
        node = backward_succ[node]
        forward_path.append(node)
    return DijkstraResult(source, target, best_cost, forward_path, settled=settled)
