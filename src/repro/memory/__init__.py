"""In-memory competitor algorithms (the paper's MDJ and MBDJ).

These are the baselines of Figure 8(d) and double as correctness oracles for
the relational algorithms: every relational method must return a path of the
same length as :func:`dijkstra_shortest_path` on the same graph.
"""

from repro.memory.dijkstra import DijkstraResult, dijkstra_shortest_path, single_source_distances
from repro.memory.bidirectional import bidirectional_dijkstra
from repro.memory.bfs import bfs_distances, bfs_shortest_path

__all__ = [
    "DijkstraResult",
    "bfs_distances",
    "bfs_shortest_path",
    "bidirectional_dijkstra",
    "dijkstra_shortest_path",
    "single_source_distances",
]
