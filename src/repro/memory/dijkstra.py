"""In-memory Dijkstra (the paper's MDJ competitor).

A binary-heap Dijkstra over the in-memory :class:`~repro.graph.model.Graph`.
Besides being the Figure 8(d) baseline, it is the correctness oracle for the
relational algorithms in the test suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import NodeNotFoundError, PathNotFoundError
from repro.graph.model import Graph


@dataclass
class DijkstraResult:
    """Result of an in-memory shortest-path computation.

    Attributes:
        source: source node id.
        target: target node id.
        distance: length of the shortest path.
        path: node ids from source to target (inclusive).
        settled: number of nodes finalized during the search.
    """

    source: int
    target: int
    distance: float
    path: List[int] = field(default_factory=list)
    settled: int = 0

    @property
    def num_edges(self) -> int:
        """Number of edges on the returned path."""
        return max(0, len(self.path) - 1)


def _check_nodes(graph: Graph, *nodes: int) -> None:
    for node in nodes:
        if not graph.has_node(node):
            raise NodeNotFoundError(f"node {node} is not in the graph")


def dijkstra_shortest_path(graph: Graph, source: int, target: int) -> DijkstraResult:
    """Compute the shortest path from ``source`` to ``target`` (MDJ).

    Raises:
        NodeNotFoundError: if either endpoint is missing.
        PathNotFoundError: if the target is unreachable.
    """
    _check_nodes(graph, source, target)
    distances: Dict[int, float] = {source: 0.0}
    predecessors: Dict[int, int] = {source: source}
    finalized: set[int] = set()
    heap: List[tuple[float, int]] = [(0.0, source)]
    settled = 0
    while heap:
        distance, node = heapq.heappop(heap)
        if node in finalized:
            continue
        finalized.add(node)
        settled += 1
        if node == target:
            break
        for neighbor, cost in graph.out_edges(node):
            candidate = distance + cost
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                predecessors[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    if target not in finalized:
        raise PathNotFoundError(f"no path from {source} to {target}")
    return DijkstraResult(
        source=source,
        target=target,
        distance=distances[target],
        path=_recover_path(predecessors, source, target),
        settled=settled,
    )


def single_source_distances(graph: Graph, source: int,
                            max_distance: Optional[float] = None) -> Dict[int, float]:
    """Return shortest distances from ``source`` to every reachable node.

    ``max_distance`` bounds the search (used by the SegTable oracle in tests:
    segments are exactly the pairs within the index threshold).
    """
    _check_nodes(graph, source)
    distances: Dict[int, float] = {source: 0.0}
    finalized: set[int] = set()
    heap: List[tuple[float, int]] = [(0.0, source)]
    while heap:
        distance, node = heapq.heappop(heap)
        if node in finalized:
            continue
        if max_distance is not None and distance > max_distance:
            break
        finalized.add(node)
        for neighbor, cost in graph.out_edges(node):
            candidate = distance + cost
            if max_distance is not None and candidate > max_distance:
                continue
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    if max_distance is not None:
        return {node: dist for node, dist in distances.items()
                if node in finalized and dist <= max_distance}
    return {node: dist for node, dist in distances.items() if node in finalized}


def _recover_path(predecessors: Dict[int, int], source: int, target: int) -> List[int]:
    path = [target]
    node = target
    while node != source:
        node = predecessors[node]
        path.append(node)
    path.reverse()
    return path
