"""In-memory breadth-first search helpers.

Hop-count BFS is used by tests (reachability oracle) and by the examples; it
is also the in-memory analogue of the relational BBFS method in terms of how
the search space grows per round.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.errors import NodeNotFoundError, PathNotFoundError
from repro.graph.model import Graph


def bfs_distances(graph: Graph, source: int) -> Dict[int, int]:
    """Return hop counts from ``source`` to every reachable node."""
    if not graph.has_node(source):
        raise NodeNotFoundError(f"node {source} is not in the graph")
    hops = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor, _cost in graph.out_edges(node):
            if neighbor not in hops:
                hops[neighbor] = hops[node] + 1
                queue.append(neighbor)
    return hops


def bfs_shortest_path(graph: Graph, source: int, target: int) -> List[int]:
    """Return a minimum-hop path from ``source`` to ``target``.

    Raises:
        PathNotFoundError: when the target is unreachable.
    """
    if not graph.has_node(source) or not graph.has_node(target):
        raise NodeNotFoundError("source or target is not in the graph")
    predecessor: Dict[int, Optional[int]] = {source: None}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        if node == target:
            break
        for neighbor, _cost in graph.out_edges(node):
            if neighbor not in predecessor:
                predecessor[neighbor] = node
                queue.append(neighbor)
    if target not in predecessor:
        raise PathNotFoundError(f"no path from {source} to {target}")
    path = [target]
    node = target
    while predecessor[node] is not None:
        node = predecessor[node]  # type: ignore[assignment]
        path.append(node)
    path.reverse()
    return path
