"""Experiment building blocks shared by the ``benchmarks/`` modules.

Each helper runs one kind of sweep the paper's evaluation uses repeatedly —
method comparisons over a workload, SegTable threshold sweeps, buffer-size
sweeps, index-strategy comparisons, construction sweeps — and returns plain
row dictionaries ready for :func:`repro.bench.harness.format_table`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.bench.harness import bench_backend, num_bench_queries
from repro.core.sqlstyle import NSQL
from repro.core.store.base import IndexMode
from repro.graph.generators import power_law_graph, random_graph
from repro.graph.model import Graph
from repro.service.session import PathService
from repro.workloads.queries import generate_queries
from repro.workloads.runner import MethodAggregate, run_service_workload


def _measurement_service(graph: Graph, backend: Optional[str] = None,
                         buffer_capacity: int = 256,
                         index_mode: str = IndexMode.CLUSTERED) -> PathService:
    """Open a cache-less service hosting ``graph`` as ``"bench"``.

    The result cache is disabled so every query is measured for real;
    ``backend`` defaults to the ``REPRO_BENCH_BACKEND`` environment
    override.
    """
    backend = backend or bench_backend()
    service = PathService(default_backend=backend, cache_size=0)
    try:
        service.add_graph("bench", graph, backend=backend,
                          buffer_capacity=buffer_capacity,
                          index_mode=index_mode)
    except Exception:
        service.close()
        raise
    return service


def build_power_graph(num_nodes: int, degree: int = 3, seed: int = 7) -> Graph:
    """The paper's ``PowerxkNyd`` family (Barabási preferential attachment)."""
    return power_law_graph(num_nodes, edges_per_node=max(1, degree // 2), seed=seed)


def build_random_graph(num_nodes: int, degree: int = 3, seed: int = 11) -> Graph:
    """The paper's ``RandomxmNyd`` family (uniform random endpoints)."""
    return random_graph(num_nodes, avg_degree=degree, seed=seed)


def method_comparison(graph: Graph, methods: Sequence[str],
                      num_queries: Optional[int] = None,
                      lthd: Optional[float] = None,
                      backend: Optional[str] = None,
                      buffer_capacity: int = 256,
                      index_mode: str = IndexMode.CLUSTERED,
                      sql_style: str = NSQL,
                      seed: int = 0,
                      max_iterations: Optional[int] = None
                      ) -> List[MethodAggregate]:
    """Run the same workload with every method and return the aggregates.

    The workload goes through a :class:`~repro.service.PathService` with the
    result cache disabled, so every query is measured for real; ``backend``
    defaults to the ``REPRO_BENCH_BACKEND`` environment override.
    """
    num_queries = num_queries or num_bench_queries()
    workload = generate_queries(graph, num_queries, seed=seed)
    service = _measurement_service(graph, backend=backend,
                                   buffer_capacity=buffer_capacity,
                                   index_mode=index_mode)
    try:
        if any(method.upper() == "BSEG" for method in methods):
            service.build_segtable("bench",
                                   lthd=lthd if lthd is not None else 3.0,
                                   sql_style=sql_style)
        aggregates = []
        for method in methods:
            aggregate, _ = run_service_workload(
                service, workload, method=method, graph="bench",
                sql_style=sql_style, max_iterations=max_iterations)
            aggregates.append(aggregate)
        return aggregates
    finally:
        service.close()


def lthd_sweep(graph: Graph, lthds: Sequence[float],
               num_queries: Optional[int] = None,
               backend: Optional[str] = None,
               seed: int = 0) -> List[Dict[str, object]]:
    """Query time of BSEG as a function of the SegTable threshold."""
    num_queries = num_queries or num_bench_queries()
    workload = generate_queries(graph, num_queries, seed=seed)
    rows: List[Dict[str, object]] = []
    for lthd in lthds:
        service = _measurement_service(graph, backend=backend)
        try:
            build_stats = service.build_segtable("bench", lthd=lthd)
            aggregate, _ = run_service_workload(service, workload,
                                                method="BSEG", graph="bench")
            rows.append(
                {
                    "lthd": lthd,
                    "avg_time_s": round(aggregate.avg_time, 5),
                    "avg_exps": round(aggregate.avg_expansions, 1),
                    "avg_visited": round(aggregate.avg_visited, 1),
                    "segments": build_stats.encoding_number,
                }
            )
        finally:
            service.close()
    return rows


def buffer_sweep(graph: Graph, capacities: Sequence[int],
                 method: str = "BSEG", lthd: float = 3.0,
                 num_queries: Optional[int] = None,
                 seed: int = 0) -> List[Dict[str, object]]:
    """Query time and I/O as a function of the buffer-pool size (pages)."""
    num_queries = num_queries or num_bench_queries()
    workload = generate_queries(graph, num_queries, seed=seed)
    rows: List[Dict[str, object]] = []
    for capacity in capacities:
        service = _measurement_service(graph, backend="minidb",
                                       buffer_capacity=capacity)
        try:
            if method.upper() == "BSEG":
                service.build_segtable("bench", lthd=lthd)
            store = service.store("bench")
            store.database.reset_stats()  # type: ignore[attr-defined]
            aggregate, _ = run_service_workload(service, workload,
                                                method=method, graph="bench")
            buffer_stats = store.database.buffer_stats  # type: ignore[attr-defined]
            rows.append(
                {
                    "buffer_pages": capacity,
                    "avg_time_s": round(aggregate.avg_time, 5),
                    "buffer_hits": buffer_stats.hits,
                    "buffer_misses": buffer_stats.misses,
                    "hit_ratio": round(buffer_stats.hit_ratio, 3),
                }
            )
        finally:
            service.close()
    return rows


def index_mode_comparison(graph: Graph, method: str = "BSEG", lthd: float = 3.0,
                          num_queries: Optional[int] = None,
                          seed: int = 0) -> List[Dict[str, object]]:
    """Query time under the NoIndex / Index / CluIndex strategies."""
    num_queries = num_queries or num_bench_queries()
    workload = generate_queries(graph, num_queries, seed=seed)
    labels = {
        IndexMode.NONE: "NoIndex",
        IndexMode.NONCLUSTERED: "Index",
        IndexMode.CLUSTERED: "CluIndex",
    }
    rows: List[Dict[str, object]] = []
    for mode in (IndexMode.NONE, IndexMode.NONCLUSTERED, IndexMode.CLUSTERED):
        service = _measurement_service(graph, backend="minidb", index_mode=mode)
        try:
            if method.upper() == "BSEG":
                service.build_segtable("bench", lthd=lthd, index_mode=mode)
            aggregate, _ = run_service_workload(service, workload,
                                                method=method, graph="bench")
            rows.append(
                {
                    "index_strategy": labels[mode],
                    "avg_time_s": round(aggregate.avg_time, 5),
                    "avg_exps": round(aggregate.avg_expansions, 1),
                }
            )
        finally:
            service.close()
    return rows


def sql_style_comparison(graph: Graph, method: str = "BSDJ",
                         num_queries: Optional[int] = None,
                         backend: Optional[str] = None, lthd: Optional[float] = None,
                         seed: int = 0) -> List[Dict[str, object]]:
    """NSQL (window function + MERGE) versus TSQL (aggregate + update/insert)."""
    num_queries = num_queries or num_bench_queries()
    workload = generate_queries(graph, num_queries, seed=seed)
    rows: List[Dict[str, object]] = []
    service = _measurement_service(graph, backend=backend)
    try:
        if method.upper() == "BSEG":
            service.build_segtable("bench",
                                   lthd=lthd if lthd is not None else 3.0)
        for style in ("nsql", "tsql"):
            aggregate, _ = run_service_workload(service, workload,
                                                method=method, graph="bench",
                                                sql_style=style)
            rows.append(
                {
                    "sql_features": "NSQL" if style == "nsql" else "TSQL",
                    "avg_time_s": round(aggregate.avg_time, 5),
                    "avg_stmts": round(aggregate.avg_statements, 1),
                }
            )
    finally:
        service.close()
    return rows


def phase_breakdown(graph: Graph, method: str = "BSDJ",
                    num_queries: Optional[int] = None,
                    seed: int = 0) -> Dict[str, float]:
    """Average per-phase time (PE / SC / FPR) for ``method``."""
    aggregates = method_comparison(graph, [method], num_queries=num_queries,
                                   seed=seed)
    return aggregates[0].time_by_phase


def operator_breakdown(graph: Graph, method: str = "BSDJ",
                       num_queries: Optional[int] = None,
                       seed: int = 0) -> Dict[str, float]:
    """Average per-operator time (F / E / M) for ``method``."""
    aggregates = method_comparison(graph, [method], num_queries=num_queries,
                                   seed=seed)
    return aggregates[0].time_by_operator


def construction_sweep(graphs: Dict[str, Graph], lthds: Sequence[float],
                       backend: Optional[str] = None,
                       sql_style: str = NSQL) -> List[Dict[str, object]]:
    """SegTable size and construction time across graphs and thresholds."""
    rows: List[Dict[str, object]] = []
    for graph_name, graph in graphs.items():
        for lthd in lthds:
            service = _measurement_service(graph, backend=backend)
            try:
                stats = service.build_segtable("bench", lthd=lthd,
                                               sql_style=sql_style)
                rows.append(
                    {
                        "graph": graph_name,
                        "lthd": lthd,
                        "segments": stats.encoding_number,
                        "iterations": stats.iterations,
                        "build_time_s": round(stats.total_time, 4),
                        "sql_style": sql_style,
                    }
                )
            finally:
                service.close()
    return rows


def scaling_sweep(sizes: Iterable[int], build_graph, methods: Sequence[str],
                  lthd: Optional[float] = None,
                  num_queries: Optional[int] = None,
                  seed: int = 0) -> List[Dict[str, object]]:
    """Average query time of each method as the graph grows."""
    rows: List[Dict[str, object]] = []
    for size in sizes:
        graph = build_graph(size)
        aggregates = method_comparison(graph, methods, num_queries=num_queries,
                                       lthd=lthd, seed=seed)
        for aggregate in aggregates:
            rows.append(
                {
                    "nodes": size,
                    "method": aggregate.method,
                    "avg_time_s": round(aggregate.avg_time, 5),
                    "avg_exps": round(aggregate.avg_expansions, 1),
                    "avg_visited": round(aggregate.avg_visited, 1),
                }
            )
    return rows
