"""Shared helpers for the benchmark harness in ``benchmarks/``.

Every table and figure of the paper's evaluation has one module under
``benchmarks/``; the graph building, sweeping and table rendering they share
lives here so the experiment logic is importable and unit-testable.
"""

from repro.bench.harness import (
    bench_backend,
    bench_scale,
    format_table,
    paper_reference,
    write_report,
)
from repro.bench.experiments import (
    build_power_graph,
    build_random_graph,
    construction_sweep,
    method_comparison,
    operator_breakdown,
    phase_breakdown,
)

__all__ = [
    "bench_backend",
    "bench_scale",
    "build_power_graph",
    "build_random_graph",
    "construction_sweep",
    "format_table",
    "method_comparison",
    "operator_breakdown",
    "paper_reference",
    "phase_breakdown",
    "write_report",
]
