"""Rendering and scaling helpers for the benchmark harness.

Every benchmark writes a small text report (the reproduced table/figure
series plus the paper's reference numbers) into ``benchmarks/results/`` and
prints it, so a ``pytest benchmarks/ --benchmark-only`` run leaves behind the
full set of reproduced tables.

Graph sizes are scaled down from the paper's multi-million-node inputs; the
``REPRO_BENCH_SCALE`` environment variable multiplies the default sizes
(``1.0`` keeps the laptop-friendly defaults, larger values approach the
paper's setup at the cost of run time).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def bench_scale() -> float:
    """Return the global size multiplier (``REPRO_BENCH_SCALE``, default 1)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError:
        return 1.0
    return max(scale, 0.01)


def scaled(value: int, minimum: int = 50) -> int:
    """Scale an integer size by :func:`bench_scale`, keeping a floor."""
    return max(minimum, int(value * bench_scale()))


def bench_backend(default: str = "minidb") -> str:
    """Backend the benchmarks run against (``REPRO_BENCH_BACKEND``).

    The value is validated against the backend registry, so a CI matrix can
    re-run the whole suite on any registered engine.  Unknown names raise
    rather than silently benchmarking the wrong engine under the intended
    engine's label.
    """
    from repro.core.store import available_backends  # imports register stores

    raw = os.environ.get("REPRO_BENCH_BACKEND", default).lower()
    if raw not in available_backends():
        raise ValueError(
            f"REPRO_BENCH_BACKEND={raw!r} is not a registered backend; "
            f"expected one of {available_backends()}"
        )
    return raw


def num_bench_queries(default: int = 4) -> int:
    """Number of queries per configuration (``REPRO_BENCH_QUERIES``)."""
    raw = os.environ.get("REPRO_BENCH_QUERIES", str(default))
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(_cell(row.get(column))))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            "  ".join(_cell(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines) + "\n"


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def paper_reference(description: str, observations: Iterable[str]) -> str:
    """Format the paper's reported behaviour next to our reproduction."""
    lines = [f"Paper reference — {description}"]
    lines.extend(f"  * {observation}" for observation in observations)
    return "\n".join(lines) + "\n"


def write_report(name: str, *sections: str) -> Path:
    """Write the report sections to ``benchmarks/results/<name>.txt``.

    The report is also printed so it shows up with ``pytest -s``.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    body = "\n".join(section.rstrip("\n") for section in sections) + "\n"
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(body, encoding="utf-8")
    print(f"\n===== {name} =====\n{body}")
    return path
