#!/usr/bin/env python
"""Execute the ``python`` code blocks in the documentation.

Documentation that does not run is documentation that rots, so CI extracts
every fenced ```` ```python ```` block from the given Markdown files and
executes it.  Blocks within one file share a namespace and run top to
bottom, so a later block may build on an earlier one.  Blocks whose fence
info string carries ``no-run`` (```` ```python no-run ````) are skipped —
use that for skeletons with placeholder bodies.

Usage::

    python tools/check_docs.py                 # README.md + every docs/*.md
    python tools/check_docs.py README.md docs/catalog.md   # explicit subset

With no arguments the checker **auto-discovers** the documentation set —
``README.md`` plus every ``docs/*.md``, sorted — so adding a document can
never silently leave it unchecked (CI used to carry a hand-maintained file
list that new docs had to remember to join).

Exits non-zero on the first failing block, printing the file, the block's
position, and the traceback.  ``src/`` is put on ``sys.path`` so the docs
run against the checkout without an install step.
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

FENCE_RE = re.compile(r"^```(\S*)\s*(.*)$")


def extract_blocks(text: str) -> Iterator[Tuple[int, str, bool]]:
    """Yield ``(start_line, code, runnable)`` for each fenced python block."""
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        match = FENCE_RE.match(lines[index].strip())
        if match and match.group(1).startswith("python"):
            info_words = (match.group(1) + " " + match.group(2)).split()
            runnable = "no-run" not in info_words
            start = index + 1
            body: List[str] = []
            index += 1
            while index < len(lines) and lines[index].strip() != "```":
                body.append(lines[index])
                index += 1
            yield start, "\n".join(body), runnable
        index += 1


def check_file(path: Path) -> int:
    """Run every runnable block in ``path``; return the number executed."""
    namespace: dict = {"__name__": f"docs_snippet_{path.stem}"}
    executed = 0
    for start, code, runnable in extract_blocks(path.read_text(encoding="utf-8")):
        label = f"{path}:{start}"
        if not runnable:
            print(f"  skip  {label} (no-run)")
            continue
        try:
            exec(compile(code, label, "exec"), namespace)
        except Exception:
            print(f"  FAIL  {label}")
            traceback.print_exc()
            raise SystemExit(1)
        executed += 1
        print(f"  ok    {label}")
    return executed


def discover_docs() -> List[Path]:
    """The default documentation set: the README plus every ``docs/*.md``,
    sorted for a stable check order."""
    candidates = [REPO_ROOT / "README.md"]
    candidates.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in candidates if path.is_file()]


def main(argv: List[str]) -> int:
    if argv:
        paths = [Path(name) for name in argv]
        missing = [path for path in paths if not path.is_file()]
        if missing:
            print(f"no such file(s): {', '.join(map(str, missing))}",
                  file=sys.stderr)
            return 2
    else:
        paths = discover_docs()
        if not paths:
            print("no README.md or docs/*.md found to check", file=sys.stderr)
            return 2
        print(f"auto-discovered {len(paths)} file(s): "
              + ", ".join(path.relative_to(REPO_ROOT).as_posix()
                          for path in paths))
    total = 0
    for path in paths:
        print(f"checking {path}")
        total += check_file(path)
    if total == 0:
        print("no runnable python blocks found", file=sys.stderr)
        return 1
    print(f"{total} block(s) executed successfully")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
