#!/usr/bin/env python
"""Forbid ad-hoc timing in ``src/repro/`` outside the ``obs`` package.

Timing semantics live in exactly one place — :mod:`repro.obs.clock` — so
every duration in the codebase is measured the same way (monotonic,
exception-safe, registry-ready).  This checker walks the AST of every
module under ``src/repro/`` and fails on any use of the banned stopwatch
primitives outside ``src/repro/obs/``:

* ``time.time`` / ``time.perf_counter`` attribute references
  (``time.perf_counter()``, ``t = time.time``, ...);
* ``from time import time`` / ``from time import perf_counter``
  (aliased or not).

Deliberately still allowed everywhere:

* ``time.monotonic`` — deadlines and cooldowns (pool checkout, router
  health) compare instants, they do not measure durations;
* ``time.sleep`` — backoff is not timing.

Use :func:`repro.obs.timer` (or a trace span) to measure a duration and
:func:`repro.obs.wall_time` for a human-facing timestamp.

Usage::

    python tools/check_timing.py            # checks src/repro
    python tools/check_timing.py PATH...    # explicit roots

Exits non-zero listing every violation as ``path:line: message``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_ROOT = REPO_ROOT / "src" / "repro"
EXEMPT_DIR = DEFAULT_ROOT / "obs"

BANNED_ATTRS = {"time", "perf_counter"}


def _exempt(path: Path) -> bool:
    try:
        path.relative_to(EXEMPT_DIR)
    except ValueError:
        return False
    return True


def violations(path: Path) -> Iterator[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    rel = path.relative_to(REPO_ROOT)
    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
                and node.attr in BANNED_ATTRS):
            yield (f"{rel}:{node.lineno}: time.{node.attr} is banned — "
                   f"use repro.obs.timer() / repro.obs.wall_time()")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in BANNED_ATTRS:
                    yield (f"{rel}:{node.lineno}: from time import "
                           f"{alias.name} is banned — use "
                           f"repro.obs.timer() / repro.obs.wall_time()")


def main(argv: List[str]) -> int:
    roots = [Path(arg).resolve() for arg in argv] or [DEFAULT_ROOT]
    found = []
    checked = 0
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            if _exempt(path):
                continue
            checked += 1
            found.extend(violations(path))
    for message in found:
        print(message)
    if found:
        print(f"check_timing: {len(found)} violation(s) in "
              f"{checked} file(s)", file=sys.stderr)
        return 1
    print(f"check_timing: OK ({checked} files, 0 violations)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
