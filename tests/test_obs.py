"""Unit tests for the observability toolkit: clock, metrics registry,
trace trees, structured logging, and the canonical metric-name schema."""

import threading

import pytest

from repro.obs import (
    CapturingStream,
    MetricsRegistry,
    NOOP_SPAN,
    Span,
    Trace,
    Tracer,
    bind_request_id,
    configure_logging,
    current_request_id,
    current_span,
    get_logger,
    new_request_id,
    record_span,
    span,
    timer,
    wall_time,
)
from repro.obs.schema import (
    ALL_METRIC_NAMES,
    DEPRECATED_STATS_ALIASES,
    with_deprecated_aliases,
)


class TestClock:
    def test_timer_measures_block(self):
        with timer() as t:
            pass
        assert t.seconds >= 0.0

    def test_timer_finalizes_on_exception(self):
        t = None
        with pytest.raises(ValueError):
            with timer() as t:
                raise ValueError("boom")
        frozen = t.seconds
        assert frozen >= 0.0
        assert t.seconds == frozen  # finalized, not still ticking

    def test_timer_reads_live_before_exit(self):
        t = timer()  # starts at construction, no __enter__ needed
        first = t.seconds
        second = t.seconds
        assert second >= first >= 0.0

    def test_wall_time_is_epoch_seconds(self):
        assert wall_time() > 1_500_000_000  # after 2017; sanity only


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.counter("c_total").inc(2.5)
        assert registry.value("c_total") == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0

    def test_labels_create_distinct_children(self):
        registry = MetricsRegistry()
        registry.counter("c_total", {"kind": "a"}).inc()
        registry.counter("c_total", {"kind": "b"}).inc(2)
        assert registry.value("c_total", {"kind": "a"}) == 1
        assert registry.value("c_total", {"kind": "b"}) == 2
        assert registry.total("c_total") == 3

    def test_same_labels_same_child(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", {"a": 1, "b": 2})
        second = registry.counter("c_total", {"b": 2, "a": 1})
        assert first is second  # order-insensitive label key

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_missing_reads_are_zero(self):
        registry = MetricsRegistry()
        assert registry.value("nope") == 0.0
        assert registry.total("nope") == 0.0
        assert registry.summary("nope")["count"] == 0


class TestHistogram:
    def test_count_sum_max_exact(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 9.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(14.0)
        assert hist.max == 9.0

    def test_percentiles_are_clamped_to_max(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.2)
        hist.observe(0.3)
        assert hist.percentile(99.0) <= hist.max

    def test_percentile_ordering(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for i in range(100):
            hist.observe(i / 200.0)
        s = hist.summary()
        assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"]

    def test_family_merge_across_labels(self):
        registry = MetricsRegistry()
        registry.histogram("h", {"kind": "a"}).observe(1.0)
        registry.histogram("h", {"kind": "b"}).observe(3.0)
        merged = registry.summary("h")
        assert merged["count"] == 2
        assert merged["sum"] == pytest.approx(4.0)
        assert merged["max"] == 3.0
        assert registry.summary("h", {"kind": "a"})["count"] == 1

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_histogram_labels_listing(self):
        registry = MetricsRegistry()
        registry.histogram("h", {"kind": "a"}).observe(1.0)
        registry.histogram("h", {"kind": "b"}).observe(1.0)
        kinds = sorted(d["kind"] for d in registry.histogram_labels("h"))
        assert kinds == ["a", "b"]


class TestExport:
    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_demo_total", {"kind": "x"},
                         help="demo counter").inc(2)
        registry.histogram("repro_demo_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert "# HELP repro_demo_total demo counter" in text
        assert "# TYPE repro_demo_total counter" in text
        assert 'repro_demo_total{kind="x"} 2' in text
        assert "# TYPE repro_demo_seconds histogram" in text
        assert 'repro_demo_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_demo_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_demo_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", {"path": 'a"b\\c'}).inc()
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_snapshot_is_json_safe(self):
        import json
        registry = MetricsRegistry()
        registry.counter("c_total", {"kind": "a"}).inc()
        registry.histogram("h").observe(0.2)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["c_total"]["type"] == "counter"
        assert snap["h"]["values"][0]["count"] == 1

    def test_collectors_run_before_export(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        collector = registry.register_collector(lambda: gauge.set(42))
        assert registry.snapshot()["g"]["values"][0]["value"] == 42
        gauge.set(0)
        registry.unregister_collector(collector)
        assert registry.snapshot()["g"]["values"][0]["value"] == 0

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        hist = registry.histogram("h")

        def work():
            for _ in range(500):
                counter.inc()
                hist.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.value("c_total") == 8 * 500
        assert registry.summary("h")["count"] == 8 * 500


class TestTrace:
    def test_tracer_roots_a_trace(self):
        tracer = Tracer()
        with tracer.span("query", graph="g") as root:
            assert root.trace is not None
            assert current_span() is root
            with span("inner", depth=1):
                pass
            record_span("measured", 0.25, what="pool")
        assert current_span() is None
        trace = root.trace
        assert trace.root is root
        assert len(trace.request_id) == 16
        names = [s.name for s in trace.walk()]
        assert names == ["query", "inner", "measured"]
        assert trace.find("measured")[0].duration_s == 0.25
        assert root.duration_s > 0.0

    def test_ambient_span_is_noop_outside_trace(self):
        with span("orphan") as node:
            assert node is NOOP_SPAN
        assert current_span() is None

    def test_disabled_tracer_hands_out_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("query") as root:
            assert root is NOOP_SPAN
            assert root.trace is None

    def test_exception_tags_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("query") as root:
                raise RuntimeError("boom")
        assert root.tags["error"] == "RuntimeError"

    def test_serialization_roundtrip(self):
        tracer = Tracer()
        with tracer.span("query", graph="g") as root:
            with span("child", index=1):
                pass
        doc = root.trace.as_dict()
        back = Trace.from_dict(doc)
        assert back.request_id == root.trace.request_id
        assert [s.name for s in back.walk()] == ["query", "child"]
        assert back.root.tags["graph"] == "g"

    def test_adopt_attaches_remote_tree(self):
        remote = Trace(Span("query", duration_s=0.5))
        tracer = Tracer()
        with tracer.span("router.query") as root:
            root.adopt(remote, shard="s1")
        adopted = root.trace.find("query")[0]
        assert adopted.tags["shard"] == "s1"
        assert adopted.duration_s == 0.5

    def test_request_id_binding_and_inheritance(self):
        assert current_request_id() is None
        rid = new_request_id()
        with bind_request_id(rid):
            assert current_request_id() == rid
            with Tracer().span("query") as root:
                pass
            assert root.trace.request_id == rid  # ambient id wins
        assert current_request_id() is None

    def test_render_is_printable(self):
        with Tracer().span("query") as root:
            with span("child"):
                pass
        text = root.trace.render()
        assert "query" in text and "child" in text


class TestLogs:
    def test_json_lines_carry_request_id_and_extra(self):
        stream = CapturingStream()
        configure_logging(stream=stream)
        try:
            log = get_logger("test.obs")
            with bind_request_id("feedc0de00000000"):
                log.info("served", extra={"endpoint": "/x", "status": 200})
            log.info("no rid")
            records = stream.records()
        finally:
            configure_logging(stream=CapturingStream())
        assert records[0]["message"] == "served"
        assert records[0]["logger"] == "repro.test.obs"
        assert records[0]["request_id"] == "feedc0de00000000"
        assert records[0]["endpoint"] == "/x"
        assert records[0]["status"] == 200
        assert "request_id" not in records[1]

    def test_configure_is_idempotent(self):
        first = CapturingStream()
        second = CapturingStream()
        logger = configure_logging(stream=first)
        configure_logging(stream=second)
        try:
            get_logger("test.obs.idem").info("once")
        finally:
            configure_logging(stream=CapturingStream())
        assert first.records() == []
        assert len(second.records()) == 1
        assert sum(getattr(h, "_repro_obs_handler", False)
                   for h in logger.handlers) <= 1


class TestSchema:
    def test_metric_names_are_prefixed_snake_case(self):
        assert ALL_METRIC_NAMES  # catalog is non-empty
        for constant, name in ALL_METRIC_NAMES.items():
            assert constant.startswith("METRIC_")
            assert name.startswith("repro_"), name
            assert name == name.lower()

    def test_with_deprecated_aliases(self):
        canonical = {"total": 3, "total_time_s": 1.25}
        out = with_deprecated_aliases(canonical, "router")
        assert out["total_time"] == 1.25
        assert out["total_time_s"] == 1.25
        # unknown kinds pass through untouched
        assert with_deprecated_aliases(canonical, "nope") == canonical

    def test_alias_map_is_canonical_to_legacy(self):
        for kind, aliases in DEPRECATED_STATS_ALIASES.items():
            for canonical_key in aliases:
                assert canonical_key.endswith(("_s", "_seconds")), \
                    (kind, canonical_key)
