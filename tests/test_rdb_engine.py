"""Tests for the Database facade and statistics."""

import os

import pytest

from repro.errors import CatalogError, InvalidQueryError
from repro.rdb.engine import Database
from repro.rdb.schema import Column
from repro.rdb.stats import DatabaseStats
from repro.rdb.types import FLOAT, INTEGER


class TestDatabase:
    def test_create_and_lookup_table(self):
        with Database(buffer_capacity=8) as db:
            db.create_table("T", [Column("a", INTEGER)])
            assert db.has_table("T")
            assert db.table_names() == ["T"]
            assert db.table("T").row_count == 0

    def test_duplicate_table_rejected(self):
        with Database() as db:
            db.create_table("T", [Column("a", INTEGER)])
            with pytest.raises(CatalogError):
                db.create_table("T", [Column("a", INTEGER)])

    def test_unknown_table(self):
        with Database() as db:
            with pytest.raises(CatalogError):
                db.table("missing")

    def test_drop_table(self):
        with Database() as db:
            db.create_table("T", [Column("a", INTEGER)])
            db.drop_table("T")
            assert not db.has_table("T")
            with pytest.raises(CatalogError):
                db.drop_table("T")

    def test_create_index_via_database(self):
        with Database() as db:
            db.create_table("T", [Column("a", INTEGER)])
            info = db.create_index("T", "a", unique=True)
            assert info.unique
            assert db.table("T").index_on("a") is not None

    def test_file_backed_database(self, tmp_path):
        path = str(tmp_path / "pages.db")
        db = Database(path=path, buffer_capacity=4)
        table = db.create_table("T", [Column("a", INTEGER), Column("b", FLOAT)])
        table.insert_many({"a": i, "b": i * 0.5} for i in range(200))
        db.close()
        assert os.path.exists(path)
        assert os.path.getsize(path) > 0

    def test_temp_database_cleans_up(self):
        db = Database(path=":temp:")
        path = db.path
        db.create_table("T", [Column("a", INTEGER)])
        db.close()
        assert not os.path.exists(path)

    def test_buffer_capacity_resize(self):
        with Database(buffer_capacity=4) as db:
            db.set_buffer_capacity(2)
            assert db.pool.capacity == 2

    def test_io_counters_increase_under_memory_pressure(self):
        with Database(buffer_capacity=2) as db:
            table = db.create_table("T", [Column("a", INTEGER), Column("b", FLOAT)])
            table.insert_many({"a": i, "b": float(i)} for i in range(500))
            before = db.io_writes
            list(table.scan())
            assert db.io_reads > 0
            assert db.io_writes >= before

    def test_reset_stats(self):
        with Database(buffer_capacity=4) as db:
            table = db.create_table("T", [Column("a", INTEGER)])
            table.insert_many({"a": i} for i in range(50))
            list(table.scan())
            db.reset_stats()
            assert db.stats.rows_read == 0
            assert db.buffer_stats.accesses == 0

    def test_close_idempotent(self):
        db = Database()
        db.close()
        db.close()


class TestDatabaseStats:
    def test_statement_counters(self):
        stats = DatabaseStats()
        stats.record_statement("select")
        stats.record_statement("select")
        stats.record_statement("merge")
        assert stats.statements == 3
        assert stats.statements_by_kind == {"select": 2, "merge": 1}

    def test_row_counters(self):
        stats = DatabaseStats()
        stats.add_rows_read(5)
        stats.add_rows_written(2)
        stats.add_rows_deleted()
        assert (stats.rows_read, stats.rows_written, stats.rows_deleted) == (5, 2, 1)

    def test_timer(self):
        stats = DatabaseStats()
        with stats.timed("phase"):
            sum(range(1000))
        assert stats.time_by_label["phase"] > 0

    def test_snapshot_and_reset(self):
        stats = DatabaseStats()
        stats.record_statement()
        snapshot = stats.snapshot()
        assert snapshot["statements"] == 1
        stats.reset()
        assert stats.statements == 0
