"""Correctness tests for the relational shortest-path algorithms.

Every relational method (DJ, BDJ, BSDJ, BBFS, BSEG) must return the same
distance as the in-memory Dijkstra oracle and a path that actually exists in
the graph, on both backends and in both SQL styles.
"""

import random

import pytest

from repro.core.api import RelationalPathFinder
from repro.errors import PathNotFoundError
from repro.graph.generators import grid_graph, path_graph, power_law_graph, random_graph
from repro.graph.model import Graph
from repro.memory.dijkstra import dijkstra_shortest_path

RELATIONAL_METHODS = ["DJ", "BDJ", "BSDJ", "BBFS", "BSEG"]


def sample_connected_queries(graph, count, seed=0):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    queries = []
    attempts = 0
    while len(queries) < count and attempts < 200:
        attempts += 1
        source, target = rng.choice(nodes), rng.choice(nodes)
        try:
            oracle = dijkstra_shortest_path(graph, source, target)
        except PathNotFoundError:
            continue
        queries.append((source, target, oracle.distance))
    return queries


@pytest.fixture(scope="module")
def power_finder():
    graph = power_law_graph(90, edges_per_node=2, seed=11)
    finder = RelationalPathFinder(graph, backend="minidb", buffer_capacity=64)
    finder.build_segtable(lthd=10)
    yield graph, finder
    finder.close()


@pytest.fixture(scope="module")
def sqlite_finder():
    graph = random_graph(100, avg_degree=3.0, seed=13)
    finder = RelationalPathFinder(graph, backend="sqlite")
    finder.build_segtable(lthd=10)
    yield graph, finder
    finder.close()


class TestAgainstOracleMiniDB:
    @pytest.mark.parametrize("method", RELATIONAL_METHODS)
    def test_distances_match_oracle(self, power_finder, method):
        graph, finder = power_finder
        for source, target, expected in sample_connected_queries(graph, 4, seed=1):
            result = finder.shortest_path(source, target, method=method)
            assert abs(result.distance - expected) < 1e-6
            result.validate_against(graph)

    @pytest.mark.parametrize("method", ["DJ", "BSDJ", "BSEG"])
    def test_tsql_style_matches_oracle(self, power_finder, method):
        graph, finder = power_finder
        for source, target, expected in sample_connected_queries(graph, 2, seed=2):
            result = finder.shortest_path(source, target, method=method,
                                          sql_style="tsql")
            assert abs(result.distance - expected) < 1e-6
            result.validate_against(graph)


class TestAgainstOracleSQLite:
    @pytest.mark.parametrize("method", RELATIONAL_METHODS)
    @pytest.mark.parametrize("sql_style", ["nsql", "tsql"])
    def test_distances_match_oracle(self, sqlite_finder, method, sql_style):
        graph, finder = sqlite_finder
        for source, target, expected in sample_connected_queries(graph, 2, seed=3):
            result = finder.shortest_path(source, target, method=method,
                                          sql_style=sql_style)
            assert abs(result.distance - expected) < 1e-6
            result.validate_against(graph)


class TestSpecialCases:
    @pytest.mark.parametrize("method", RELATIONAL_METHODS)
    def test_source_equals_target(self, method):
        graph = path_graph(5)
        finder = RelationalPathFinder(graph)
        finder.build_segtable(lthd=2)
        result = finder.shortest_path(3, 3, method=method)
        assert result.distance == 0
        assert result.path == [3]
        finder.close()

    @pytest.mark.parametrize("method", RELATIONAL_METHODS)
    def test_unreachable_target_raises(self, method):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(5, 6, 1.0)  # disconnected component
        finder = RelationalPathFinder(graph)
        finder.build_segtable(lthd=2)
        with pytest.raises(PathNotFoundError):
            finder.shortest_path(0, 6, method=method)
        finder.close()

    @pytest.mark.parametrize("method", RELATIONAL_METHODS)
    def test_adjacent_nodes(self, method):
        graph = grid_graph(3, 3, seed=5)
        finder = RelationalPathFinder(graph)
        finder.build_segtable(lthd=5)
        expected = dijkstra_shortest_path(graph, 0, 1).distance
        result = finder.shortest_path(0, 1, method=method)
        assert abs(result.distance - expected) < 1e-6
        finder.close()

    def test_directed_asymmetry(self):
        graph = Graph()
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(1, 2, 3.0)
        graph.add_edge(2, 0, 1.0)
        finder = RelationalPathFinder(graph)
        forward = finder.shortest_path(0, 2, method="BSDJ")
        backward = finder.shortest_path(2, 0, method="BSDJ")
        assert forward.distance == 6.0
        assert backward.distance == 1.0
        finder.close()

    def test_zero_weight_edges(self):
        graph = Graph()
        graph.add_edge(0, 1, 0.0)
        graph.add_edge(1, 2, 0.0)
        graph.add_edge(0, 2, 5.0)
        finder = RelationalPathFinder(graph)
        result = finder.shortest_path(0, 2, method="BSDJ")
        assert result.distance == 0.0
        finder.close()


class TestStatisticsShape:
    def test_bsdj_fewer_expansions_than_bdj(self, power_finder):
        """The set-at-a-time claim of Table 2: BSDJ needs no more expansions
        than BDJ, which needs far fewer than DJ."""
        graph, finder = power_finder
        queries = sample_connected_queries(graph, 3, seed=4)
        total = {"DJ": 0, "BDJ": 0, "BSDJ": 0}
        for source, target, _expected in queries:
            for method in total:
                result = finder.shortest_path(source, target, method=method)
                total[method] += result.stats.expansions
        assert total["BSDJ"] <= total["BDJ"] <= total["DJ"]

    def test_bseg_no_more_expansions_than_bsdj(self, power_finder):
        """Theorem 3: selective expansion over SegTable needs no more
        iterations than set Dijkstra."""
        graph, finder = power_finder
        queries = sample_connected_queries(graph, 4, seed=5)
        bseg = bsdj = 0
        for source, target, _expected in queries:
            bseg += finder.shortest_path(source, target, method="BSEG").stats.expansions
            bsdj += finder.shortest_path(source, target, method="BSDJ").stats.expansions
        assert bseg <= bsdj

    def test_bbfs_fewest_expansions_but_more_visited(self, power_finder):
        """Table 3's trade-off: BBFS takes the fewest rounds but visits the
        most nodes."""
        graph, finder = power_finder
        queries = sample_connected_queries(graph, 3, seed=6)
        bbfs_exps = bsdj_exps = 0
        bbfs_vst = bsdj_vst = 0
        for source, target, _expected in queries:
            bbfs = finder.shortest_path(source, target, method="BBFS").stats
            bsdj = finder.shortest_path(source, target, method="BSDJ").stats
            bbfs_exps += bbfs.expansions
            bsdj_exps += bsdj.expansions
            bbfs_vst += bbfs.visited_nodes
            bsdj_vst += bsdj.visited_nodes
        assert bbfs_exps <= bsdj_exps
        assert bbfs_vst >= bsdj_vst

    def test_stats_record_phases_and_operators(self, power_finder):
        graph, finder = power_finder
        source, target, _expected = sample_connected_queries(graph, 1, seed=7)[0]
        stats = finder.shortest_path(source, target, method="BSDJ").stats
        assert stats.statements > 0
        assert stats.expansions > 0
        assert stats.total_time > 0
        assert "PE" in stats.time_by_phase
        assert "E" in stats.time_by_operator
        assert stats.visited_nodes > 0

    def test_nsql_issues_fewer_statements_than_tsql(self, power_finder):
        """Figure 6(d): the MERGE + window-function style needs fewer
        statements than the traditional update/insert style."""
        graph, finder = power_finder
        source, target, _expected = sample_connected_queries(graph, 1, seed=8)[0]
        nsql = finder.shortest_path(source, target, method="BSDJ",
                                    sql_style="nsql").stats
        tsql = finder.shortest_path(source, target, method="BSDJ",
                                    sql_style="tsql").stats
        assert nsql.distance == tsql.distance
        assert nsql.statements < tsql.statements
