"""Observability across the wire: the ``/metrics`` Prometheus endpoint,
trace trees spanning local and remote shards, ``X-Request-Id``
propagation, and retry correlation (one logical query, one id)."""

import os
import socket
import time
import urllib.request

import pytest

from repro.graph.generators import power_law_graph, random_graph
from repro.obs import CapturingStream, bind_request_id, configure_logging
from repro.obs.schema import (
    METRIC_FAILOVERS,
    METRIC_HTTP_REQUESTS,
    METRIC_QUERIES,
    METRIC_ROUTER_QUERIES,
)
from repro.serve import ShardClient, ShardServer
from repro.serve.server import _ShardRequestHandler
from repro.service import PathService
from repro.service.planner import QuerySpec
from repro.shard import ShardRouter

GRAPHS = {
    "social": power_law_graph(80, edges_per_node=2, seed=11),
    "roads": random_graph(60, avg_degree=2.5, seed=12),
}


def _poll(predicate, timeout_s=3.0):
    """The server observes metrics/logs *after* flushing the reply, so a
    client can return before the record lands; poll briefly."""
    deadline = time.monotonic() + timeout_s
    while True:
        value = predicate()
        if value or time.monotonic() > deadline:
            return value
        time.sleep(0.01)


def _seed_catalog(catalog_dir, names):
    with PathService(catalog_path=catalog_dir) as service:
        for name in names:
            service.add_graph(name, GRAPHS[name], backend="sqlite",
                              db_path=os.path.join(catalog_dir,
                                                   f"{name}.db"))


@pytest.fixture
def topology(tmp_path):
    """One shard behind HTTP ("social"), one in-process ("roads")."""
    remote_catalog = str(tmp_path / "remote")
    local_catalog = str(tmp_path / "local")
    _seed_catalog(remote_catalog, ("social",))
    _seed_catalog(local_catalog, ("roads",))
    service = PathService.open(remote_catalog, shard_id="remote")
    server = ShardServer(service, port=0, own_service=True).start()
    remote_name = f"{server.host}:{server.port}"
    try:
        with ShardRouter.open([server.url, local_catalog],
                              names=[remote_name, "local"]) as router:
            yield server, router, remote_name
    finally:
        server.close()


class TestMetricsEndpoint:
    def test_prometheus_text_is_served_raw(self, topology):
        server, router, remote_name = topology
        router.shortest_path(0, 40, graph="social")  # crosses the wire
        with urllib.request.urlopen(server.url + "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            text = response.read().decode("utf-8")
        assert "# TYPE repro_queries_total counter" in text
        assert "# TYPE repro_query_latency_seconds histogram" in text
        assert "repro_cache_misses_total" in text
        assert _poll(
            lambda: 'repro_http_requests_total{endpoint="/shortest_path"'
            in ShardClient(server.url).metrics_text())

    def test_client_metrics_text_scrape(self, topology):
        server, router, remote_name = topology
        router.shortest_path(0, 40, graph="social")
        text = ShardClient(server.url).metrics_text()
        assert "repro_queries_total" in text
        # The scrape itself lands in a later scrape's counters.
        assert _poll(lambda: 'endpoint="/metrics"'
                     in ShardClient(server.url).metrics_text())

    def test_router_metrics_include_failover_counts(self, tmp_path):
        catalogs = []
        for side in ("a", "b"):
            catalog = str(tmp_path / side)
            _seed_catalog(catalog, ("social",))
            catalogs.append(catalog)
        primary = PathService.open(catalogs[0], shard_id="primary")
        server = ShardServer(primary, port=0, own_service=True).start()
        remote_name = f"{server.host}:{server.port}"
        with ShardRouter.open([server.url, catalogs[1]],
                              remote_retries=0) as router:
            router.shortest_path(0, 40, graph="social")
            server.close()
            router.shortest_path(0, 40, graph="social", use_cache=False)
            registry = router.registry
            assert registry.value(METRIC_FAILOVERS,
                                  {"shard": remote_name}) == 1
            assert registry.total(METRIC_ROUTER_QUERIES) == 2
            # the local replica's service publishes into the same registry
            assert registry.total(METRIC_QUERIES) >= 1
            snapshot = router.metrics()
            assert METRIC_FAILOVERS in snapshot

    def test_unknown_endpoint_label_collapses(self, topology):
        server, _, _ = topology
        request = urllib.request.Request(server.url + "/nope/deep/path")
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(request)
        text = ShardClient(server.url).metrics_text()
        assert 'endpoint="(unknown)"' in text
        assert "/nope" not in text  # no per-path cardinality explosion


class TestTraceAcrossTheWire:
    def test_remote_query_yields_one_stitched_tree(self, topology):
        server, router, remote_name = topology
        result = router.shortest_path(0, 40, graph="social")
        trace = result.trace
        assert trace is not None
        root = trace.root
        assert root.name == "router.query"
        assert root.tags["shard"] == remote_name
        # The remote service's own tree was adopted as a child …
        remote_spans = trace.find("query")
        assert remote_spans and remote_spans[0].tags["shard"] == remote_name
        # … with the promised phases inside it.
        assert trace.find("plan")
        assert trace.find("pool.checkout")
        assert trace.find("fem.iteration")
        # Durations are consistent with wall time: the router's span
        # covers the HTTP round trip, which covers the remote execution.
        assert root.duration_s > 0.0
        assert remote_spans[0].duration_s <= root.duration_s + 1e-6

    def test_local_query_traces_without_adoption(self, topology):
        _, router, _ = topology
        result = router.shortest_path(0, 30, graph="roads")
        root = result.trace.root
        assert root.name == "router.query"
        assert root.tags["shard"] == "local"
        # in-process: the service span joined ambiently, not via adopt()
        assert result.trace.find("query")
        assert result.trace.find("fem.iteration")

    def test_batch_scatter_records_slice_spans(self, topology):
        _, router, remote_name = topology
        batch = [("social", 0, t) for t in (10, 20)] + [("roads", 0, 15)]
        scatter = router.shortest_path_many(batch, concurrency=2)
        assert scatter.trace is not None
        slices = scatter.trace.find("router.slice")
        assert {s.tags["shard"] for s in slices} == {remote_name, "local"}
        assert sum(s.tags["queries"] for s in slices) == len(batch)


class TestRequestIdPropagation:
    def test_bound_id_reaches_server_logs(self, topology):
        server, _, _ = topology
        stream = CapturingStream()
        configure_logging(stream=stream)
        try:
            client = ShardClient(server.url)
            with bind_request_id("cafe000000000001"):
                client.shortest_path(QuerySpec(source=0, target=40,
                                               graph="social"))
            records = _poll(
                lambda: [r for r in stream.records()
                         if r.get("endpoint") == "/shortest_path"])
        finally:
            configure_logging(stream=CapturingStream())
        assert records, "server must log the request"
        assert records[-1]["request_id"] == "cafe000000000001"
        assert records[-1]["status"] == 200

    def test_retry_carries_one_logical_id(self, tmp_path):
        seen = []

        class _FlakyRecordingHandler(_ShardRequestHandler):
            def do_POST(self):  # noqa: N802 - http.server API
                if self.path == "/shortest_path":
                    seen.append(self.headers.get("X-Request-Id"))
                    if len(seen) == 1:
                        # die without answering; the client must retry
                        try:
                            self.connection.shutdown(socket.SHUT_RDWR)
                        except OSError:
                            pass
                        self.close_connection = True
                        return
                super().do_POST()

        catalog = str(tmp_path / "flaky")
        _seed_catalog(catalog, ("social",))
        service = PathService.open(catalog, shard_id="flaky")
        with ShardServer(service, port=0, own_service=True,
                         handler_class=_FlakyRecordingHandler) as server:
            client = ShardClient(server.url, retries=2)
            result = client.shortest_path(QuerySpec(source=0, target=40,
                                                    graph="social"))
        assert result.distance is not None
        assert len(seen) == 2, "first attempt died, second succeeded"
        assert seen[0] == seen[1] is not None, \
            "a retried request must trace as ONE logical query"

    def test_http_metrics_count_both_attempts(self, tmp_path):
        # Correlation does not hide work: the server still counts every
        # *served* request (the dropped first attempt never completed).
        catalog = str(tmp_path / "plain")
        _seed_catalog(catalog, ("social",))
        service = PathService.open(catalog, shard_id="plain")
        with ShardServer(service, port=0, own_service=True) as server:
            client = ShardClient(server.url)
            client.shortest_path(QuerySpec(source=0, target=40,
                                           graph="social"))
            registry = service.registry
            assert _poll(lambda: registry.value(
                METRIC_HTTP_REQUESTS,
                {"endpoint": "/shortest_path", "status": "200"})) == 1
