"""Tests for the calibrated cost model behind ``method="auto"``.

Covers: profile (de)serialization and catalog round-trips, the structural
model's choices on fixture graphs, calibration probes producing choices
that match the measured-fastest method, the runtime feedback loop
correcting a deliberately mis-seeded profile, plan hysteresis, cost-driven
``lthd="auto"`` landing in Figure 7's good band, and warm starts reusing a
persisted profile with zero re-probing.
"""

import os
import time

import pytest

from repro.catalog import Catalog, CalibrationRecord, Manifest
from repro.catalog.manifest import load_manifest, save_manifest
from repro.errors import InvalidQueryError
from repro.graph.generators import (
    grid_graph,
    path_graph,
    power_law_graph,
)
from repro.graph.stats import compute_statistics
from repro.service import PathService
from repro.service.calibrate import calibrate_profile
from repro.service.costmodel import (
    AUTO_CANDIDATES,
    CostModel,
    CostProfile,
    default_profile,
    host_fingerprint,
)

QUICK_PROBE = dict(probe_nodes=80, queries_per_method=2, repeats=2)
"""Fast probe options for tests that need a real calibration run."""


@pytest.fixture(scope="module")
def sqlite_profile():
    """One real calibration of the sqlite backend, shared by the module."""
    return calibrate_profile("sqlite")


class TestCostProfile:
    def test_round_trip_preserves_every_field(self):
        profile = CostProfile(
            backend="sqlite", host="abc", statement_cost=1e-5,
            scan_row_cost=2e-8, row_cost=3e-6, seg_row_cost=4e-6,
            seg_build_row_cost=5e-6,
            method_bias={"DJ": 2.0, "BSEG": 0.5}, global_bias=1.5,
            calibrated=True, calibrated_at=123.0, probe_seconds=0.25)
        restored = CostProfile.from_dict(profile.as_dict())
        assert restored == profile

    def test_default_profile_is_uncalibrated_and_host_stamped(self):
        profile = default_profile("minidb")
        assert not profile.calibrated
        assert profile.backend == "minidb"
        assert profile.host == host_fingerprint()

    def test_host_fingerprint_is_stable(self):
        assert host_fingerprint() == host_fingerprint()


class TestDefaultModelChoices:
    """The uncalibrated model must reproduce the paper's qualitative
    ordering on the canonical fixtures (these anchor the planner tests)."""

    def _choose(self, graph, has_segtable=False, lthd=None):
        model = CostModel()
        method, reason, breakdown = model.choose(
            compute_statistics(graph), has_segtable, segtable_lthd=lthd)
        return method, breakdown

    def test_small_graphs_pick_dj(self):
        for graph in (grid_graph(5, 5, seed=2),
                      path_graph(10, weight_range=(1, 1), seed=1)):
            method, _ = self._choose(graph)
            assert method == "DJ"

    def test_hub_heavy_graphs_pick_bsdj(self):
        method, breakdown = self._choose(
            power_law_graph(120, edges_per_node=2, seed=3))
        assert method == "BSDJ"
        # The win comes from tie-collapse: far fewer predicted iterations.
        assert (breakdown["BSDJ"].iterations
                < breakdown["BDJ"].iterations / 2)

    def test_segtable_prefers_bseg_on_indexed_graph(self):
        method, _ = self._choose(
            power_law_graph(120, edges_per_node=2, seed=3),
            has_segtable=True, lthd=5.0)
        assert method == "BSEG"

    def test_bseg_priced_but_ineligible_without_index(self):
        model = CostModel()
        breakdown = model.breakdown(
            compute_statistics(power_law_graph(120, edges_per_node=2,
                                               seed=3)), False)
        assert not breakdown["BSEG"].eligible
        method, _, _ = model.choose(
            compute_statistics(power_law_graph(120, edges_per_node=2,
                                               seed=3)), False)
        assert method != "BSEG"

    def test_estimates_scale_with_graph_size(self):
        model = CostModel()
        small = model.estimate("DJ", compute_statistics(
            grid_graph(4, 4, seed=1)))
        large = model.estimate("DJ", compute_statistics(
            grid_graph(12, 12, seed=1)))
        assert large.seconds > small.seconds
        assert large.iterations > small.iterations


class TestCalibration:
    def test_profile_is_measured_and_complete(self, sqlite_profile):
        profile = sqlite_profile
        assert profile.calibrated
        assert profile.backend == "sqlite"
        assert profile.host == host_fingerprint()
        assert profile.statement_cost > 0
        assert profile.row_cost > 0
        assert profile.seg_row_cost > 0
        assert profile.seg_build_row_cost > 0
        assert profile.probe_seconds > 0
        for method in ("DJ", "BDJ", "BSDJ", "BSEG"):
            assert method in profile.method_bias

    def test_calibrated_choice_matches_measured_fastest(self, sqlite_profile):
        """On decisive fixtures the calibrated pick must be the method that
        actually measures fastest (a statistical tie is tolerated)."""
        fixtures = [
            ("small grid", grid_graph(5, 5, seed=2), None,
             [(0, 24), (3, 21), (12, 24)]),
            ("power law", power_law_graph(120, edges_per_node=2, seed=3),
             None, [(0, 50), (3, 99), (10, 77)]),
            ("indexed power law",
             power_law_graph(120, edges_per_node=2, seed=3), 5.0,
             [(0, 50), (3, 99), (10, 77)]),
        ]
        model = CostModel(sqlite_profile)
        for label, graph, lthd, queries in fixtures:
            with PathService(default_backend="sqlite",
                             cache_size=0) as service:
                service.add_graph("g", graph)
                methods = list(AUTO_CANDIDATES)
                segtable = None
                if lthd is not None:
                    segtable = service.build_segtable("g", lthd=lthd)
                    methods.append("BSEG")
                measured = {}
                for method in methods:
                    best = float("inf")
                    for _ in range(3):
                        start = time.perf_counter()
                        for source, target in queries:
                            service.shortest_path(source, target, graph="g",
                                                  method=method,
                                                  use_cache=False)
                        best = min(best, time.perf_counter() - start)
                    measured[method] = best
            chosen, _, _ = model.choose(compute_statistics(graph),
                                        lthd is not None,
                                        segtable_lthd=lthd,
                                        segtable=segtable)
            fastest = min(measured, key=measured.get)
            assert (chosen == fastest
                    or measured[chosen] <= 1.3 * measured[fastest]), (
                f"{label}: calibrated model chose {chosen} "
                f"({measured[chosen]:.4f}s) but {fastest} measured "
                f"{measured[fastest]:.4f}s"
            )


class TestFeedback:
    def _structural_seconds(self, method, stats):
        """The unbiased structural prediction (the 'truth' the feedback
        samples report back)."""
        return CostModel(default_profile()).estimate(method, stats).seconds

    def test_mis_seeded_profile_corrects_toward_truth(self):
        stats = compute_statistics(power_law_graph(120, edges_per_node=2,
                                                   seed=3))
        profile = default_profile("sqlite")
        profile.method_bias = {"BSDJ": 20.0}  # 20x overpriced
        model = CostModel(profile)
        wrong, _, _ = model.choose(stats, False)
        assert wrong != "BSDJ"
        truth = self._structural_seconds("BSDJ", stats)
        for _ in range(60):
            model.observe("BSDJ", stats, truth)
        assert profile.method_bias["BSDJ"] < 2.0
        corrected, _, _ = model.choose(stats, False)
        assert corrected == "BSDJ"
        assert model.feedback_samples("BSDJ") == 60
        assert model.recent_samples()[-1].method == "BSDJ"

    def test_single_method_traffic_moves_global_not_relative(self):
        """Scale errors land in the global bias: hammering one method with
        uniformly slow observations must not flip the ordering against
        methods that never ran."""
        stats = compute_statistics(power_law_graph(120, edges_per_node=2,
                                                   seed=3))
        model = CostModel(default_profile("sqlite"))
        first, _, _ = model.choose(stats, False)
        truth = 10.0 * self._structural_seconds(first, stats)
        for _ in range(40):
            model.observe(first, stats, truth)
        assert model.profile.global_bias > 3.0
        assert model.profile.method_bias[first] < 2.0
        still, _, _ = model.choose(stats, False)
        assert still == first

    def test_hysteresis_holds_near_ties_and_releases_on_big_shifts(self):
        stats = compute_statistics(power_law_graph(120, edges_per_node=2,
                                                   seed=3))
        model = CostModel(default_profile("sqlite"))
        incumbent, _, _ = model.choose(stats, True, segtable_lthd=5.0)
        assert incumbent == "BSEG"
        # A small penalty makes BSDJ nominally cheapest but leaves it
        # within the hysteresis margin of the incumbent.
        model.profile.method_bias["BSEG"] = 1.5
        held, reason, _ = model.choose(stats, True, segtable_lthd=5.0)
        assert held == "BSEG"
        assert "holding" in reason
        # A decisive penalty releases the incumbent.
        model.profile.method_bias["BSEG"] = 10.0
        released, _, _ = model.choose(stats, True, segtable_lthd=5.0)
        assert released != "BSEG"

    def test_service_feeds_executions_back(self, small_power_graph):
        with PathService() as service:
            service.add_graph("default", small_power_graph)
            model = service.cost_model()
            assert model.feedback_samples() == 0
            result = service.shortest_path(0, 50)
            assert model.feedback_samples() == 1
            assert result.stats.predicted_seconds is not None
            # Cache hits replay without executing — no new sample.
            service.shortest_path(0, 50)
            assert model.feedback_samples() == 1

    def test_memory_and_capped_queries_never_train(self, small_power_graph):
        with PathService() as service:
            service.add_graph("default", small_power_graph)
            service.shortest_path(0, 50, method="MDJ")
            service.shortest_path(0, 50, method="BDJ", max_iterations=500)
            assert service.cost_model().feedback_samples() == 0


class TestLthdAuto:
    UNIT_GRAPH = power_law_graph(100, edges_per_node=2,
                                 weight_range=(1, 1), seed=5)
    CANDIDATES = [2.0, 4.0, 8.0, 16.0]
    QUERIES = [(0, 60), (3, 90), (10, 45)]

    def test_choose_lthd_returns_candidate_with_predictions(self):
        model = CostModel()
        stats = compute_statistics(self.UNIT_GRAPH)
        lthd, rows = model.choose_lthd(stats, candidates=self.CANDIDATES)
        assert lthd in self.CANDIDATES
        assert len(rows) == len(self.CANDIDATES)
        chosen_rows = [row for row in rows if row.get("chosen")]
        assert len(chosen_rows) == 1
        assert chosen_rows[0]["lthd"] == lthd
        assert chosen_rows[0]["objective"] == min(row["objective"]
                                                  for row in rows)

    def test_larger_lthd_predicts_bigger_index_and_build(self):
        model = CostModel()
        stats = compute_statistics(self.UNIT_GRAPH)
        small = model.predict_segtable(stats, 2.0)
        large = model.predict_segtable(stats, 8.0)
        assert large["segments"] >= small["segments"]
        assert large["build_seconds"] > small["build_seconds"]

    def test_auto_lthd_lands_in_figure7_good_band(self, sqlite_profile):
        """Measure the Figure 7 curve (BSEG query time per lthd) on a
        unit-weight graph and assert the model's pick sits in the band of
        thresholds within 1.5x of the measured best."""
        measured = {}
        for lthd in self.CANDIDATES:
            with PathService(default_backend="sqlite",
                             cache_size=0) as service:
                service.add_graph("g", self.UNIT_GRAPH)
                service.build_segtable("g", lthd=lthd)
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    for source, target in self.QUERIES:
                        service.shortest_path(source, target, graph="g",
                                              method="BSEG", use_cache=False)
                    best = min(best, time.perf_counter() - start)
                measured[lthd] = best
        band = [lthd for lthd, seconds in measured.items()
                if seconds <= 1.5 * min(measured.values())]
        for model in (CostModel(), CostModel(sqlite_profile)):
            chosen, _ = model.choose_lthd(compute_statistics(self.UNIT_GRAPH),
                                          candidates=self.CANDIDATES)
            assert chosen in band, (
                f"lthd={chosen} outside the measured good band {band} "
                f"(times: { {k: round(v, 5) for k, v in measured.items()} })"
            )

    def test_build_segtable_auto(self, small_power_graph):
        with PathService() as service:
            service.add_graph("default", small_power_graph)
            recommended, rows = service.recommend_lthd()
            stats = service.build_segtable(lthd="auto")
            assert stats.lthd == recommended
            assert service.store().segtable_lthd == recommended
            assert service.explain(0, 50).method == "BSEG"
            assert rows  # predictions table is populated

    def test_build_segtable_rejects_unknown_string(self, small_power_graph):
        with PathService() as service:
            service.add_graph("default", small_power_graph)
            with pytest.raises(InvalidQueryError):
                service.build_segtable(lthd="automatic")

    def test_amortize_queries_validated(self):
        with pytest.raises(ValueError):
            CostModel().choose_lthd(
                compute_statistics(self.UNIT_GRAPH), amortize_queries=0)


class TestManifestPersistence:
    def _record(self, backend="sqlite", host=None):
        profile = default_profile(backend)
        if host is not None:
            profile.host = host
        profile.calibrated = True
        profile.calibrated_at = 1234.5
        return CalibrationRecord(backend=backend, profile=profile,
                                 calibrated_at=1234.5)

    def test_manifest_round_trips_calibrations(self, tmp_path):
        manifest = Manifest()
        manifest.calibrations["sqlite"] = self._record()
        path = str(tmp_path / "manifest.json")
        save_manifest(manifest, path)
        restored = load_manifest(path)
        assert restored.calibrations["sqlite"] == manifest.calibrations["sqlite"]

    def test_old_manifests_without_calibrations_load(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        save_manifest(Manifest(), path)
        assert load_manifest(path).calibrations == {}

    def test_catalog_set_get_remove(self, tmp_path):
        catalog = Catalog(str(tmp_path / "cat"))
        assert catalog.get_calibration("sqlite") is None
        catalog.set_calibration(self._record())
        assert catalog.get_calibration("sqlite") is not None
        # A second handle sees the persisted record.
        reopened = Catalog(str(tmp_path / "cat"))
        assert reopened.get_calibration("sqlite").calibrated_at == 1234.5
        assert "sqlite" in reopened.calibrations()
        reopened.remove_calibration("sqlite")
        assert Catalog(str(tmp_path / "cat")).get_calibration("sqlite") is None

    def test_warm_start_reuses_profile_with_zero_reprobing(self, tmp_path):
        catalog_dir = str(tmp_path / "cat")
        graph = power_law_graph(80, edges_per_node=2, seed=9)
        with PathService(catalog_path=catalog_dir) as cold:
            cold.add_graph("g", graph, backend="sqlite",
                           db_path=os.path.join(catalog_dir, "g.db"))
            profiles = cold.calibrate("sqlite", **QUICK_PROBE)
            assert cold.calibrations_run == 1
            stamp = profiles["sqlite"].calibrated_at
        with PathService.open(catalog_dir) as warm:
            model = warm.cost_model("sqlite")
            assert warm.calibrations_run == 0, "warm start must not re-probe"
            assert model.profile.calibrated
            assert model.profile.calibrated_at == stamp
            # The calibrated planner answers immediately.
            assert warm.explain(0, 40, graph="g").cost_breakdown is not None

    def test_profile_from_another_host_is_ignored(self, tmp_path):
        catalog_dir = str(tmp_path / "cat")
        Catalog(catalog_dir).set_calibration(
            self._record(host="another-machine"))
        with PathService(catalog_path=catalog_dir,
                         default_backend="sqlite") as service:
            assert not service.cost_model("sqlite").profile.calibrated

    def test_service_calibrate_defaults_to_hosted_backends(self, tmp_path):
        with PathService() as service:
            service.add_graph("g", grid_graph(4, 4, seed=1),
                              backend="sqlite")
            profiles = service.calibrate(**QUICK_PROBE)
            assert set(profiles) == {"sqlite"}


class TestCatalogCLI:
    def test_calibrate_subcommand_persists_profiles(self, tmp_path, capsys):
        from repro.catalog.cli import main
        catalog_dir = str(tmp_path / "cat")
        graph = grid_graph(4, 4, seed=1)
        with PathService(catalog_path=catalog_dir) as service:
            service.add_graph("g", graph, backend="sqlite",
                              db_path=os.path.join(catalog_dir, "g.db"))
        assert main(["calibrate", "--catalog", catalog_dir]) == 0
        out = capsys.readouterr().out
        assert "calibrated 'sqlite'" in out
        record = Catalog(catalog_dir).get_calibration("sqlite")
        assert record is not None and record.profile.calibrated

    def test_calibrate_empty_catalog_needs_backend(self, tmp_path, capsys):
        from repro.catalog.cli import main
        catalog_dir = str(tmp_path / "cat")
        Catalog(catalog_dir)  # materialize an empty catalog
        assert main(["calibrate", "--catalog", catalog_dir]) == 1
        assert "no entries" in capsys.readouterr().err
