"""Tests for the serve wire protocol codecs: specs, results, plans, and
the error mapping both ways."""

import pytest

from repro.core.path import PathResult
from repro.core.stats import QueryStats
from repro.errors import (
    PathNotFoundError,
    RemoteProtocolError,
    ReproError,
    ShardUnavailableError,
    UnknownGraphError,
)
from repro.graph.generators import grid_graph
from repro.serve import protocol
from repro.service import PathService
from repro.service.planner import QuerySpec


class TestSpecCodec:
    def test_round_trip_all_fields(self):
        spec = QuerySpec(source=3, target=9, graph="roads", method="bseg",
                         sql_style="wsql", max_iterations=7)
        assert protocol.spec_from_dict(protocol.spec_to_dict(spec)) == spec

    def test_round_trip_defaults(self):
        spec = QuerySpec(source=0, target=1, graph="default")
        again = protocol.spec_from_dict(protocol.spec_to_dict(spec))
        assert again == spec
        assert again.max_iterations is None

    def test_missing_required_field_raises_protocol_error(self):
        with pytest.raises(RemoteProtocolError, match="malformed query spec"):
            protocol.spec_from_dict({"source": 1})  # no target

    def test_garbage_types_raise_protocol_error(self):
        with pytest.raises(RemoteProtocolError):
            protocol.spec_from_dict({"source": "abc", "target": 2})

    def test_list_codec_preserves_order(self):
        specs = [QuerySpec(source=i, target=i + 1, graph="g")
                 for i in range(5)]
        assert protocol.specs_from_list(protocol.specs_to_list(specs)) == specs


class TestResultCodec:
    def test_round_trip_with_stats(self):
        with PathService() as service:
            service.add_graph("g", grid_graph(4, 4, seed=1))
            result = service.shortest_path(0, 15, graph="g")
        again = protocol.result_from_dict(protocol.result_to_dict(result))
        assert (again.source, again.target) == (result.source, result.target)
        assert again.distance == result.distance
        assert list(again.path) == list(result.path)
        assert isinstance(again.stats, QueryStats)
        assert again.stats.as_dict() == result.stats.as_dict()

    def test_round_trip_without_stats(self):
        result = PathResult(source=1, target=2, distance=3.5, path=[1, 5, 2],
                            stats=None)
        again = protocol.result_from_dict(protocol.result_to_dict(result))
        assert again.stats is None
        assert again.distance == 3.5

    def test_results_list_keeps_none_slots(self):
        result = PathResult(source=1, target=2, distance=1.0, path=[1, 2],
                            stats=None)
        wire = protocol.results_to_list([None, result, None])
        back = protocol.results_from_list(wire)
        assert back[0] is None and back[2] is None
        assert back[1].distance == 1.0

    def test_malformed_result_raises_protocol_error(self):
        with pytest.raises(RemoteProtocolError, match="malformed path result"):
            protocol.result_from_dict({"source": 1, "target": 2})


class TestPlanCodec:
    def test_round_trip_auto_plan_with_cost_breakdown(self):
        with PathService() as service:
            service.add_graph("g", grid_graph(5, 5, seed=2), backend="sqlite")
            plan = service.plan(QuerySpec(source=0, target=24, graph="g",
                                          method="auto"))
        again = protocol.plan_from_dict(protocol.plan_to_dict(plan))
        assert again.spec == plan.spec
        assert again.method == plan.method
        assert again.reason == plan.reason
        assert again.uses_segtable == plan.uses_segtable
        assert again.bidirectional == plan.bidirectional
        assert again.phases == tuple(plan.phases)
        assert again.operators_per_iteration == tuple(
            plan.operators_per_iteration)
        assert again.estimated_iterations == plan.estimated_iterations
        assert again.predicted_seconds == plan.predicted_seconds
        if plan.cost_breakdown is None:
            assert again.cost_breakdown is None
        else:
            assert set(again.cost_breakdown) == set(plan.cost_breakdown)
            for method, estimate in plan.cost_breakdown.items():
                assert (again.cost_breakdown[method].as_dict()
                        == estimate.as_dict())

    def test_malformed_plan_raises_protocol_error(self):
        with pytest.raises(RemoteProtocolError, match="malformed query"):
            protocol.plan_from_dict({"method": "fem"})


class TestErrorCodec:
    def test_library_error_round_trips_as_same_type(self):
        wire = protocol.error_to_dict(PathNotFoundError("no path 1 -> 2"))
        exc = protocol.error_from_dict(wire)
        assert type(exc) is PathNotFoundError
        assert "no path 1 -> 2" in str(exc)

    def test_every_concrete_error_type_maps_back(self):
        for exc_type in (UnknownGraphError, ShardUnavailableError):
            back = protocol.error_from_dict(
                protocol.error_to_dict(exc_type("boom")))
            assert type(back) is exc_type

    def test_unknown_type_becomes_protocol_error(self):
        exc = protocol.error_from_dict({"type": "NoSuchError",
                                        "message": "m"})
        assert type(exc) is RemoteProtocolError
        assert "NoSuchError" in str(exc)

    def test_non_library_exception_becomes_protocol_error(self):
        # A server-side ValueError must not come back as a fabricated
        # exception type — the name and message survive inside the
        # protocol error instead.
        wire = protocol.error_to_dict(ValueError("bad input"))
        exc = protocol.error_from_dict(wire)
        assert type(exc) is RemoteProtocolError
        assert "ValueError" in str(exc) and "bad input" in str(exc)

    def test_base_repro_error_is_not_honored(self):
        # Only strict subclasses map back; the base class name is treated
        # as unknown (a server never raises the bare base deliberately).
        exc = protocol.error_from_dict(
            protocol.error_to_dict(ReproError("generic")))
        assert type(exc) is RemoteProtocolError

    def test_empty_envelope_is_untyped_protocol_error(self):
        exc = protocol.error_from_dict({})
        assert type(exc) is RemoteProtocolError
        assert "(untyped)" in str(exc)
