"""Tests for parallel batch execution: serial-equality stress, single-flight
dedup, capability clamping through the service, error paths, and the
thread-safety of the shared result cache."""

import random
import threading
import time

import pytest

from repro.core.store.minidb import MiniDBGraphStore
from repro.core.store.registry import register_backend, unregister_backend
from repro.errors import InvalidQueryError, PathNotFoundError
from repro.graph.generators import path_graph, random_graph
from repro.service import PathService
from repro.service.cache import InFlightMap, ResultCache


def _random_queries(graph, count, seed):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(count)]


def _shapes(batch):
    return [(None if r is None else (r.distance, list(r.path)))
            for r in batch.results]


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("backend", ["minidb", "sqlite"])
    def test_stress_concurrency_8_matches_serial(self, backend):
        graph = random_graph(200, avg_degree=3.0, seed=21)
        queries = _random_queries(graph, 64, seed=22)
        with PathService(cache_size=0) as service:
            service.add_graph("g", graph, backend=backend)
            serial = service.shortest_path_many(queries, graph="g")
            parallel = service.shortest_path_many(queries, graph="g",
                                                  concurrency=8)
            assert _shapes(parallel) == _shapes(serial)
            assert parallel.stats.concurrency == 8
            assert parallel.stats.executed == serial.stats.executed

    def test_sqlite_file_backed_clone_pool_matches_serial(self, tmp_path):
        graph = random_graph(150, avg_degree=3.0, seed=31)
        queries = _random_queries(graph, 48, seed=32)
        with PathService(cache_size=0) as service:
            service.add_graph("g", graph, backend="sqlite",
                              db_path=str(tmp_path / "conc.db"),
                              concurrency=4)
            serial = service.shortest_path_many(queries, graph="g")
            parallel = service.shortest_path_many(queries, graph="g",
                                                  concurrency=4)
            assert _shapes(parallel) == _shapes(serial)
            stats = service.pool_stats("g")
            assert stats.replicas_cloned >= 1
            assert stats.replicas_rehydrated == 0

    def test_unreachable_pairs_match_serial(self):
        graph = path_graph(5, weight_range=(1, 1))
        graph.add_node(99)  # disconnected island
        queries = [(0, 4), (0, 99), (1, 3), (99, 2)]
        with PathService(cache_size=0) as service:
            service.add_graph("g", graph)
            serial = service.shortest_path_many(queries, graph="g")
            parallel = service.shortest_path_many(queries, graph="g",
                                                  concurrency=4)
            assert _shapes(parallel) == _shapes(serial)
            assert parallel.stats.not_found == serial.stats.not_found == 2

    def test_parallel_after_segtable_build(self):
        graph = random_graph(120, avg_degree=3.0, seed=41)
        queries = _random_queries(graph, 32, seed=42)
        with PathService(cache_size=0) as service:
            service.add_graph("g", graph, concurrency=4)
            service.build_segtable("g", lthd=3)
            serial = service.shortest_path_many(queries, graph="g")
            parallel = service.shortest_path_many(queries, graph="g",
                                                  concurrency=4)
            assert _shapes(parallel) == _shapes(serial)
            assert set(parallel.stats.per_method) == {"BSEG"}

    def test_segtable_build_during_parallel_batch(self, tmp_path):
        """A build landing mid-batch drains the pool, never corrupts or
        deadlocks, and post-build batches use the fresh index."""
        graph = random_graph(150, avg_degree=3.0, seed=71)
        queries = _random_queries(graph, 48, seed=72)
        with PathService(cache_size=0) as service:
            # Capacity (8) deliberately exceeds the batch's workers (4):
            # the drain barrier must also stop checkouts from *growing* a
            # fresh reader clone mid-build, not just wait for current ones.
            service.add_graph("g", graph, backend="sqlite",
                              db_path=str(tmp_path / "build_race.db"),
                              concurrency=8)
            errors = []

            def run_batch():
                try:
                    service.shortest_path_many(queries, graph="g",
                                               concurrency=4)
                except BaseException as exc:  # pragma: no cover - failure
                    errors.append(exc)

            thread = threading.Thread(target=run_batch)
            thread.start()
            time.sleep(0.05)  # let the batch get in flight
            service.build_segtable("g", lthd=3)
            thread.join(timeout=120)
            assert not thread.is_alive()
            assert not errors
            serial = service.shortest_path_many(queries, graph="g")
            parallel = service.shortest_path_many(queries, graph="g",
                                                  concurrency=4)
            assert _shapes(parallel) == _shapes(serial)
            assert set(parallel.stats.per_method) == {"BSEG"}

    def test_mixed_graphs_in_one_parallel_batch(self):
        left = path_graph(8, weight_range=(1, 1), seed=1)
        right = path_graph(8, weight_range=(2, 2), seed=2)
        queries = [("left", 0, 7), ("right", 0, 7), ("left", 1, 6),
                   ("right", 1, 6)] * 4
        with PathService() as service:
            service.add_graph("left", left)
            service.add_graph("right", right)
            parallel = service.shortest_path_many(queries, concurrency=4)
            assert parallel.distances()[:2] == [7, 14]
            assert parallel.stats.per_graph == {"left": 8, "right": 8}


class TestSingleFlightAndStats:
    def test_duplicates_execute_once(self):
        graph = path_graph(12, weight_range=(1, 1))
        queries = [(0, 11)] * 32
        with PathService() as service:
            service.add_graph("g", graph)
            batch = service.shortest_path_many(queries, graph="g",
                                               concurrency=8)
            assert len(set(batch.distances())) == 1
            assert batch.stats.executed == 1
            answered_without_executing = (batch.stats.cache_hits
                                          + batch.stats.single_flight_hits)
            assert answered_without_executing == 31
            assert batch.from_cache.count(True) == 31

    def test_timing_counters_populated(self):
        graph = random_graph(100, avg_degree=3.0, seed=51)
        queries = _random_queries(graph, 16, seed=52)
        with PathService(cache_size=0) as service:
            service.add_graph("g", graph)
            batch = service.shortest_path_many(queries, graph="g",
                                               concurrency=4)
            assert batch.stats.execute_time > 0.0
            assert batch.stats.queue_time >= 0.0
            as_dict = batch.stats.as_dict()
            for field in ("concurrency", "single_flight_hits", "queue_time",
                          "execute_time"):
                assert field in as_dict

    def test_parallel_does_not_inflate_cache_counters(self):
        graph = path_graph(10, weight_range=(1, 1))
        queries = [(0, 9), (1, 8), (2, 7), (3, 6)]
        with PathService() as service:
            service.add_graph("g", graph)
            service.shortest_path_many(queries, graph="g", concurrency=4)
            info = service.cache_info()
            # One counted lookup per query, exactly like a serial batch
            # (the executor's double-check peeks without counting).
            assert info.misses == 4
            assert info.hits == 0

    def test_invalid_concurrency_rejected(self):
        with PathService() as service:
            service.add_graph("g", path_graph(4))
            with pytest.raises(InvalidQueryError):
                service.shortest_path_many([(0, 3)], graph="g",
                                           concurrency=0)


class TestCapabilityClamp:
    def test_serial_only_backend_still_correct_under_concurrency(self):
        class SerialOnlyStore(MiniDBGraphStore):
            supports_concurrent_readers = False

        def factory(path=None, buffer_capacity=256):
            return SerialOnlyStore(path=path,
                                   buffer_capacity=buffer_capacity)

        register_backend("serialonly", factory, replace=True)
        try:
            graph = random_graph(100, avg_degree=3.0, seed=61)
            queries = _random_queries(graph, 24, seed=62)
            with PathService(cache_size=0) as service:
                service.add_graph("g", graph, backend="serialonly",
                                  concurrency=8)
                assert service.pool_stats("g").capacity == 1
                serial = service.shortest_path_many(queries, graph="g")
                parallel = service.shortest_path_many(queries, graph="g",
                                                      concurrency=8)
                assert _shapes(parallel) == _shapes(serial)
                # Never more than the single clamped member was created.
                assert service.pool_stats("g").created == 1
        finally:
            unregister_backend("serialonly")


class TestErrorPaths:
    def test_raise_on_unreachable_parallel_raises_first_by_index(self):
        graph = path_graph(5, weight_range=(1, 1))
        graph.add_node(99)
        with PathService(cache_size=0) as service:
            service.add_graph("g", graph)
            with pytest.raises(PathNotFoundError):
                service.shortest_path_many([(0, 4), (0, 99), (1, 3)],
                                           graph="g", concurrency=4,
                                           raise_on_unreachable=True)

    def test_pool_healthy_after_unreachable_failures(self):
        graph = path_graph(5, weight_range=(1, 1))
        graph.add_node(99)
        queries = [(0, 99), (99, 1), (0, 4), (1, 3)] * 4
        with PathService(cache_size=0) as service:
            service.add_graph("g", graph)
            for _ in range(3):  # leaked members would exhaust the pool
                batch = service.shortest_path_many(queries, graph="g",
                                                   concurrency=4)
                assert batch.stats.not_found == 8
            assert service.pool_stats("g").in_use == 0


class TestThreadSafeCache:
    def test_result_cache_survives_concurrent_hammering(self):
        from repro.core.path import PathResult

        cache = ResultCache(capacity=64)
        errors = []

        def hammer(worker: int) -> None:
            try:
                for i in range(500):
                    key = ("g", worker % 4, i % 100, "DJ", "nsql")
                    cache.put(key, PathResult(0, 1, 1.0, [0, 1], None))
                    cache.get(key)
                    if i % 50 == 0:
                        cache.invalidate_graph("g")
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats.hits + stats.misses == 8 * 500

    def test_single_flight_followers_get_leader_result(self):
        inflight = InFlightMap()
        flight, leader = inflight.lease(("k",))
        assert leader
        same_flight, follower_leads = inflight.lease(("k",))
        assert same_flight is flight
        assert not follower_leads
        results = []
        waiter = threading.Thread(
            target=lambda: results.append(flight.wait(timeout=5.0)))
        waiter.start()
        inflight.resolve(("k",), "answer")
        waiter.join(timeout=5.0)
        assert results == ["answer"]
        # The key is free again: the next lease starts a new flight.
        _, leads_again = inflight.lease(("k",))
        assert leads_again

    def test_single_flight_failure_propagates(self):
        inflight = InFlightMap()
        flight, _ = inflight.lease(("k",))
        inflight.fail(("k",), PathNotFoundError("no path"))
        with pytest.raises(PathNotFoundError):
            flight.wait(timeout=1.0)
