"""Tests for the catalog-driven shard router: specs/transports, routing
tables, scatter-gather batches, rebalancing, and the ``shards`` CLI."""

import os

import pytest

from repro.catalog import Catalog
from repro.catalog.cli import main as catalog_main
from repro.errors import (
    NodeNotFoundError,
    PathNotFoundError,
    PersistenceUnsupportedError,
    ShardConflictError,
    ShardError,
    UnknownGraphError,
    UnknownShardError,
)
from repro.graph.generators import grid_graph, power_law_graph
from repro.graph.model import Graph
from repro.service import PathService
from repro.shard import (
    ShardRouter,
    ShardSpec,
    available_transports,
    build_routing_table,
    default_shard_name,
    register_transport,
)
from repro.shard.routing import format_routing_table
from repro.shard.spec import InProcessTransport


def _seed_catalog(catalog_dir, graphs, lthd=None):
    """Catalog ``graphs`` (name -> Graph) as sqlite files inside
    ``catalog_dir``, optionally with a SegTable each."""
    with PathService(catalog_path=catalog_dir) as service:
        for name, graph in graphs.items():
            service.add_graph(name, graph, backend="sqlite",
                              db_path=os.path.join(catalog_dir, f"{name}.db"))
            if lthd is not None:
                service.build_segtable(name, lthd=lthd)


def _shapes(results):
    return [(None if r is None else (r.distance, tuple(r.path)))
            for r in results]


@pytest.fixture
def two_shards(tmp_path):
    """Two seeded shard catalogs: shard ``a`` owns alpha, shard ``b`` owns
    beta and gamma (all with SegTables)."""
    cat_a = str(tmp_path / "a")
    cat_b = str(tmp_path / "b")
    graphs = {
        "alpha": power_law_graph(60, edges_per_node=2, seed=1),
        "beta": power_law_graph(70, edges_per_node=2, seed=2),
        "gamma": grid_graph(6, 6, seed=3),
    }
    _seed_catalog(cat_a, {"alpha": graphs["alpha"]}, lthd=3.0)
    _seed_catalog(cat_b, {"beta": graphs["beta"], "gamma": graphs["gamma"]},
                  lthd=3.0)
    return cat_a, cat_b, graphs


class TestShardSpec:
    def test_rejects_empty_and_pathlike_names(self, tmp_path):
        with pytest.raises(ShardError):
            ShardSpec(name="", catalog_path=str(tmp_path))
        with pytest.raises(ShardError):
            ShardSpec(name="a/b", catalog_path=str(tmp_path))

    def test_rejects_unknown_transport_at_open_time(self, tmp_path):
        # Construction accepts any transport name — "remote" (and
        # third-party transports) may register after the spec is built —
        # so the registry check happens when the spec is *opened*.
        spec = ShardSpec(name="a", catalog_path=str(tmp_path),
                         transport="carrier-pigeon")
        with pytest.raises(ShardError, match="unknown shard transport"):
            spec.open()

    def test_transport_registered_after_spec_construction_works(self, tmp_path):
        _seed_catalog(str(tmp_path), {"late": grid_graph(3, 3, seed=7)})
        spec = ShardSpec(name="late-shard", catalog_path=str(tmp_path),
                         transport="late-registered")
        register_transport("late-registered", InProcessTransport)
        try:
            transport = spec.open()
            try:
                assert transport.graphs() == ("late",)
            finally:
                transport.close()
        finally:
            from repro.shard.spec import _TRANSPORTS
            _TRANSPORTS.pop("late-registered", None)

    def test_transport_registry(self):
        assert "inprocess" in available_transports()
        with pytest.raises(ShardError, match="already registered"):
            register_transport("inprocess", InProcessTransport)
        # replace=True is the deliberate path (restore the original).
        register_transport("inprocess", InProcessTransport, replace=True)

    def test_default_shard_name_is_catalog_basename(self, tmp_path):
        assert default_shard_name(str(tmp_path / "shard-x") + os.sep) == "shard-x"


class TestRoutingTable:
    def test_conflicting_fingerprints_refuse(self):
        entry = _fake_entry("g", "sha256:aaa")
        other = _fake_entry("g", "sha256:bbb")
        with pytest.raises(ShardConflictError, match="conflicting graph"):
            build_routing_table([("s1", {"g": entry}), ("s2", {"g": other})])

    def test_identical_fingerprints_are_replicas_first_wins(self):
        entry = _fake_entry("g", "sha256:aaa")
        twin = _fake_entry("g", "sha256:aaa")
        table = build_routing_table([("s1", {"g": entry}),
                                     ("s2", {"g": twin})])
        route = table.route("g")
        assert route.shard == "s1"
        assert route.replicas == ("s2",)

    def test_unrouted_graph_raises(self):
        table = build_routing_table([("s1", {})])
        with pytest.raises(UnknownGraphError, match="not routed"):
            table.owner("ghost")

    def test_by_shard_groups_sorted(self):
        table = build_routing_table([
            ("s1", {"b": _fake_entry("b", "sha256:b"),
                    "a": _fake_entry("a", "sha256:a")}),
            ("s2", {"c": _fake_entry("c", "sha256:c")}),
        ])
        assert table.by_shard() == {"s1": ("a", "b"), "s2": ("c",)}
        assert len(format_routing_table(table)) == 5  # header + rule + 3 rows


def _fake_entry(name, fingerprint, stale=False):
    from repro.catalog.manifest import CatalogEntry
    return CatalogEntry(name=name, backend="sqlite",
                        db_path=f"{name}.db", fingerprint=fingerprint,
                        stale=stale)


class TestRouterOpen:
    def test_open_routes_and_stamps_ownership(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            assert router.shards() == ("a", "b")
            assert router.graphs() == ("alpha", "beta", "gamma")
            assert router.owner("alpha") == "a"
            assert router.owner("gamma") == "b"
        # The manifest ownership record is durable.
        assert Catalog(cat_a).get("alpha").shard == "a"
        assert Catalog(cat_b).get("beta").shard == "b"

    def test_open_requires_exactly_one_source(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with pytest.raises(ShardError, match="exactly one"):
            ShardRouter.open()
        with pytest.raises(ShardError, match="exactly one"):
            ShardRouter.open(catalog_paths=[cat_a],
                             specs=[ShardSpec("a", cat_a)])

    def test_specs_with_names_rejected(self, two_shards):
        cat_a, _, _ = two_shards
        with pytest.raises(ShardError, match="applies to catalog_paths"):
            ShardRouter.open(specs=[ShardSpec("a", cat_a)], names=["x"])

    def test_strict_false_skips_unattachable_routes(self, tmp_path):
        import sqlite3
        cat_a, cat_b = str(tmp_path / "a"), str(tmp_path / "b")
        _seed_catalog(cat_a, {"good": grid_graph(4, 4, seed=1)})
        _seed_catalog(cat_b, {"drifted": grid_graph(4, 4, seed=2)})
        # Change the database underneath shard b's manifest entry so its
        # fingerprint check fails on attach.
        with sqlite3.connect(os.path.join(cat_b, "drifted.db")) as conn:
            conn.execute("INSERT INTO TEdges (fid, tid, cost) "
                         "VALUES (0, 15, 0.5)")
        with ShardRouter.open(catalog_paths=[cat_a, cat_b],
                              strict=False) as router:
            # The skipped entry is not routed at all — a clean "not
            # routed" up front instead of "not hosted" mid-batch.
            assert router.graphs() == ("good",)
            with pytest.raises(UnknownGraphError, match="not routed"):
                router.shortest_path(0, 1, graph="drifted")
            scatter = router.shortest_path_many([("good", 0, 15)])
            assert scatter.results[0] is not None

    def test_duplicate_shard_names_refused(self, tmp_path, two_shards):
        cat_a, _, _ = two_shards
        nested = str(tmp_path / "deep" / "a")
        os.makedirs(nested)
        _seed_catalog(nested, {"delta": grid_graph(3, 3, seed=9)})
        # Both basenames are "a" — ambiguous without explicit names.
        with pytest.raises(ShardError, match="duplicate shard name"):
            ShardRouter.open(catalog_paths=[cat_a, nested])
        with ShardRouter.open(catalog_paths=[cat_a, nested],
                              names=["a1", "a2"]) as router:
            assert router.shards() == ("a1", "a2")

    def test_conflicting_ownership_refused_and_services_closed(
            self, tmp_path):
        cat_a, cat_b = str(tmp_path / "a"), str(tmp_path / "b")
        _seed_catalog(cat_a, {"g": grid_graph(4, 4, seed=1)})
        _seed_catalog(cat_b, {"g": grid_graph(4, 4, seed=2)})
        with pytest.raises(ShardConflictError):
            ShardRouter.open(catalog_paths=[cat_a, cat_b])

    def test_replica_routes_to_first_shard(self, tmp_path):
        graph = grid_graph(4, 4, seed=7)
        cat_a, cat_b = str(tmp_path / "a"), str(tmp_path / "b")
        _seed_catalog(cat_a, {"g": graph})
        _seed_catalog(cat_b, {"g": graph})
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            route = router.routing_table().route("g")
            assert route.shard == "a"
            assert route.replicas == ("b",)
            assert router.shortest_path(0, 15, graph="g").distance is not None

    def test_warm_open_runs_zero_segtable_builds(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            for shard in router.shards():
                assert router.service(shard).segtable_builds == 0

    def test_shard_services_are_shard_aware_in_cache_keys(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            assert router.service("a").shard_id == "a"
            assert router.service("b").shard_id == "b"


class TestRouterQueries:
    def test_single_query_routes_to_owner(self, two_shards):
        cat_a, cat_b, graphs = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            direct = PathService()
            direct.add_graph("beta", graphs["beta"])
            expected = direct.shortest_path(0, 9, graph="beta")
            routed = router.shortest_path(0, 9, graph="beta")
            assert routed.distance == expected.distance
            assert routed.path == expected.path
            direct.close()

    def test_unknown_graph_raises_before_work(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            with pytest.raises(UnknownGraphError):
                router.shortest_path(0, 1, graph="ghost")
            with pytest.raises(UnknownGraphError):
                router.shortest_path_many([("ghost", 0, 1)])

    def test_explain_delegates_to_owner(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            plan = router.explain(0, 9, graph="alpha")
            assert plan.spec.graph == "alpha"
            assert plan.method in ("DJ", "BDJ", "BSDJ", "BSEG")

    def test_scatter_gather_preserves_input_order(self, two_shards):
        cat_a, cat_b, graphs = two_shards
        queries = [("beta", 0, 9), ("alpha", 0, 5), ("gamma", 0, 35),
                   ("beta", 1, 8), ("alpha", 0, 5)]
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            scatter = router.shortest_path_many(queries, concurrency=2)
            assert len(scatter) == 5
            assert scatter.shard_of == ["b", "a", "b", "b", "a"]
            # Input order: every result answers its own spec.
            for spec, result in zip(scatter.specs, scatter.results):
                assert result is not None
                assert result.source == spec.source
                assert result.target == spec.target
            # The duplicate (alpha, 0, 5) came from shard a's cache.
            assert scatter.from_cache[4]
            stats = scatter.stats
            assert stats.total == 5
            assert stats.shards_touched == 2
            assert set(stats.per_shard) == {"a", "b"}
            assert stats.per_shard["a"].total == 2
            assert stats.per_shard["b"].total == 3
            rollup = stats.rollup()
            assert rollup.total == 5
            assert rollup.per_graph == {"alpha": 2, "beta": 2, "gamma": 1}
            assert rollup.total_time == stats.total_time

    def test_scatter_matches_monolith(self, two_shards):
        cat_a, cat_b, graphs = two_shards
        queries = [("alpha", 0, 7), ("beta", 2, 11), ("gamma", 0, 20),
                   ("gamma", 5, 30), ("alpha", 3, 9)]
        with PathService() as mono:
            for name, graph in graphs.items():
                mono.add_graph(name, graph)
            baseline = mono.shortest_path_many(queries)
            expected = _shapes(baseline.results)
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            for level in (1, 3):
                scatter = router.shortest_path_many(queries,
                                                    concurrency=level)
                assert _shapes(scatter.results) == expected

    def test_unreachable_recorded_or_raised_deterministically(self, tmp_path):
        # Two disconnected components on one shard, a connected graph on
        # the other.
        split = Graph(directed=False)
        split.add_edge(0, 1, 1.0)
        split.add_edge(10, 11, 1.0)
        cat_a, cat_b = str(tmp_path / "a"), str(tmp_path / "b")
        _seed_catalog(cat_a, {"split": split})
        _seed_catalog(cat_b, {"grid": grid_graph(4, 4, seed=5)})
        queries = [("grid", 0, 15), ("split", 0, 10), ("split", 1, 11),
                   ("grid", 1, 14)]
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            scatter = router.shortest_path_many(queries)
            assert scatter.results[0] is not None
            assert scatter.results[1] is None
            assert scatter.results[2] is None
            assert scatter.stats.not_found == 2
            assert scatter.distances()[1] is None
            assert len(scatter.found()) == 2
            # raise_on_unreachable surfaces the smallest input index.
            with pytest.raises(PathNotFoundError, match="batch index 1"):
                router.shortest_path_many(queries, raise_on_unreachable=True)

    def test_malformed_queries_fail_before_any_work(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            with pytest.raises(NodeNotFoundError):
                router.shortest_path_many([("alpha", 0, 5),
                                           ("beta", 0, 999999)])
            # Nothing executed: no shard saw a slice.
            info = router.service("a").cache_info()
            assert info.misses == 0

    def test_unknown_shard_name(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            with pytest.raises(UnknownShardError):
                router.service("z")


class TestMove:
    def test_move_migrates_segtable_without_rebuild(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            before = router.shortest_path(0, 5, graph="alpha")
            route = router.move("alpha", "b")
            assert route.shard == "b"
            assert router.owner("alpha") == "b"
            # The SegTable migrated inside the database file: adopted, not
            # reconstructed.
            assert router.service("b").segtable_builds == 0
            assert router.service("b").segtable_stats("alpha") is not None
            assert router.service("b").store("alpha").has_segtable
            after = router.shortest_path(0, 5, graph="alpha")
            assert after.distance == before.distance
            assert after.path == before.path
            # Manifests were rewritten: entry moved a -> b, file moved too.
            assert "alpha" not in Catalog(cat_a)
            entry = Catalog(cat_b).get("alpha")
            assert entry.shard == "b"
            assert os.path.exists(os.path.join(cat_b, "alpha.db"))
            assert not os.path.exists(os.path.join(cat_a, "alpha.db"))

    def test_move_to_current_owner_is_noop(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            route = router.move("alpha", "a")
            assert route.shard == "a"
            assert os.path.exists(os.path.join(cat_a, "alpha.db"))

    def test_move_survives_router_reopen(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            router.move("alpha", "b")
            expected = router.shortest_path(0, 5, graph="alpha")
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            assert router.owner("alpha") == "b"
            assert router.service("b").segtable_builds == 0
            replay = router.shortest_path(0, 5, graph="alpha")
            assert replay.distance == expected.distance

    def test_move_refuses_target_filename_collision(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            # Drop a decoy file where the move would land.
            with open(os.path.join(cat_b, "alpha.db"), "wb") as handle:
                handle.write(b"decoy")
            with pytest.raises(ShardError, match="already holds"):
                router.move("alpha", "b")

    def test_failed_export_keeps_graph_hosted_and_routed(
            self, two_shards, monkeypatch):
        from repro.core.store.sqlite import SQLiteGraphStore
        cat_a, cat_b, _ = two_shards

        def broken_export(self, dest_path):
            # Fail *midway*: a partial snapshot hits the disk first.
            with open(dest_path, "wb") as handle:
                handle.write(b"partial snapshot")
            raise OSError("disk full")

        monkeypatch.setattr(SQLiteGraphStore, "export_database",
                            broken_export)
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            with pytest.raises(OSError, match="disk full"):
                router.move("alpha", "b")
            # The aborted move left everything in place: still owned by
            # and hosted on shard a, and still answerable.
            assert router.owner("alpha") == "a"
            assert "alpha" in router.service("a").graphs()
            assert router.shortest_path(0, 5, graph="alpha") is not None
            assert "alpha" in Catalog(cat_a)
            assert "alpha" not in Catalog(cat_b)
            # ... and the half-written snapshot was cleaned up, so a
            # retry is not refused by the dest-exists guard.
            assert not os.path.exists(os.path.join(cat_b, "alpha.db"))
            assert router.move_stats()["moves"] == 0

    def test_move_onto_replica_flips_ownership_without_copy(self, tmp_path):
        graph = grid_graph(4, 4, seed=11)
        cat_a, cat_b = str(tmp_path / "a"), str(tmp_path / "b")
        _seed_catalog(cat_a, {"g": graph}, lthd=3.0)
        _seed_catalog(cat_b, {"g": graph}, lthd=3.0)
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            before = router.shortest_path(0, 15, graph="g")
            mtime = os.path.getmtime(os.path.join(cat_b, "g.db"))
            route = router.move("g", "b")
            # Ownership flipped; the old owner is now the replica; no
            # bytes moved (both files stay, the target's untouched).
            assert route.shard == "b"
            assert route.replicas == ("a",)
            assert router.owner("g") == "b"
            assert os.path.getmtime(os.path.join(cat_b, "g.db")) == mtime
            assert os.path.exists(os.path.join(cat_a, "g.db"))
            assert router.move_stats() == {"moves": 0, "replica_noops": 1}
            after = router.shortest_path(0, 15, graph="g")
            assert (after.distance, after.path) == (before.distance,
                                                   before.path)
            # The durable ownership record moved with the flip.
            assert Catalog(cat_b).get("g").shard == "b"
            assert Catalog(cat_a).get("g").shard == "b"

    def test_move_unknown_graph_or_shard(self, two_shards):
        cat_a, cat_b, _ = two_shards
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            with pytest.raises(UnknownGraphError):
                router.move("ghost", "b")
            with pytest.raises(UnknownShardError):
                router.move("alpha", "z")


class TestStoreRelocation:
    def test_sqlite_export_database_carries_segtable(self, tmp_path):
        from repro.core.store.registry import create_store
        graph = grid_graph(4, 4, seed=2)
        src_path = str(tmp_path / "src.db")
        dst_path = str(tmp_path / "dst.db")
        with PathService(catalog_path=str(tmp_path / "cat")) as service:
            service.add_graph("g", graph, backend="sqlite", db_path=src_path)
            service.build_segtable("g", lthd=3.0)
        store = create_store("sqlite", path=src_path)
        try:
            assert store.supports_relocation()
            store.export_database(dst_path)
        finally:
            store.close()
        copy = create_store("sqlite", path=dst_path)
        try:
            assert copy.has_persistent_tables()
            assert copy.has_persistent_segtable()
            assert copy.content_fingerprint() == \
                create_store("sqlite", path=src_path).content_fingerprint()
        finally:
            copy.close()

    def test_in_memory_store_refuses_relocation(self):
        from repro.core.store.registry import create_store
        store = create_store("sqlite")
        try:
            assert not store.supports_relocation()
            with pytest.raises(PersistenceUnsupportedError):
                store.export_database("/tmp/nope.db")
        finally:
            store.close()

    def test_minidb_refuses_relocation(self):
        from repro.core.store.registry import create_store
        store = create_store("minidb")
        try:
            assert not store.supports_relocation()
            with pytest.raises(PersistenceUnsupportedError):
                store.export_database("/tmp/nope.db")
        finally:
            store.close()


class TestRouterCalibration:
    def test_calibrate_fans_out_and_persists_per_shard(self, two_shards):
        cat_a, cat_b, _ = two_shards
        quick = dict(probe_nodes=60, queries_per_method=1, repeats=1)
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            profiles = router.calibrate(**quick)
            assert set(profiles) == set(router.shards())
            for per_backend in profiles.values():
                assert per_backend["sqlite"].calibrated
        # Each shard's own catalog carries its profile; a reopened router
        # warm-starts calibrated planners with zero re-probing.
        for path in (cat_a, cat_b):
            assert Catalog(path).get_calibration("sqlite") is not None
        with ShardRouter.open(catalog_paths=[cat_a, cat_b]) as router:
            for shard in router.shards():
                service = router.service(shard)
                assert service.calibrations_run == 0
                assert service.cost_model("sqlite").profile.calibrated


class TestShardsCLI:
    def test_shards_prints_routing_table(self, two_shards, capsys):
        cat_a, cat_b, _ = two_shards
        status = catalog_main(["shards", "--catalog", cat_a,
                               "--catalog", cat_b])
        out = capsys.readouterr().out
        assert status == 0
        assert "alpha" in out and "beta" in out and "gamma" in out
        assert "3 graph(s) across 2 shard(s)" in out

    def test_shards_reports_conflict_nonzero(self, tmp_path, capsys):
        cat_a, cat_b = str(tmp_path / "a"), str(tmp_path / "b")
        _seed_catalog(cat_a, {"g": grid_graph(4, 4, seed=1)})
        _seed_catalog(cat_b, {"g": grid_graph(4, 4, seed=2)})
        status = catalog_main(["shards", "--catalog", cat_a,
                               "--catalog", cat_b])
        err = capsys.readouterr().err
        assert status == 1
        assert "conflicting graph ownership" in err

    def test_shards_duplicate_names_need_disambiguation(
            self, tmp_path, capsys):
        nested_a = str(tmp_path / "x" / "cat")
        nested_b = str(tmp_path / "y" / "cat")
        os.makedirs(nested_a)
        os.makedirs(nested_b)
        _seed_catalog(nested_a, {"g1": grid_graph(3, 3, seed=1)})
        _seed_catalog(nested_b, {"g2": grid_graph(3, 3, seed=2)})
        status = catalog_main(["shards", "--catalog", nested_a,
                               "--catalog", nested_b])
        assert status == 1
        assert "duplicate shard names" in capsys.readouterr().err
        status = catalog_main(["shards", "--catalog", nested_a,
                               "--catalog", nested_b,
                               "--name", "s1", "--name", "s2"])
        assert status == 0
        assert "s1" in capsys.readouterr().out
