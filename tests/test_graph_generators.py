"""Unit tests for the synthetic graph generators."""

import pytest

from repro.graph.generators import (
    complete_graph,
    grid_graph,
    path_graph,
    power_law_graph,
    random_graph,
    star_graph,
)
from repro.graph.stats import compute_statistics, degree_histogram


class TestRandomGraph:
    def test_node_and_edge_counts(self):
        graph = random_graph(100, avg_degree=3.0, seed=1)
        assert graph.num_nodes == 100
        assert graph.num_edges == 300

    def test_weights_in_default_range(self):
        graph = random_graph(50, seed=2)
        for edge in graph.edges():
            assert 1 <= edge.cost <= 100

    def test_custom_weight_range(self):
        graph = random_graph(50, weight_range=(5, 5), seed=2)
        assert all(edge.cost == 5 for edge in graph.edges())

    def test_deterministic_for_seed(self):
        first = random_graph(60, seed=9)
        second = random_graph(60, seed=9)
        assert sorted(first.edge_triples()) == sorted(second.edge_triples())

    def test_different_seeds_differ(self):
        first = random_graph(60, seed=1)
        second = random_graph(60, seed=2)
        assert sorted(first.edge_triples()) != sorted(second.edge_triples())

    def test_no_self_loops(self):
        graph = random_graph(40, seed=3)
        assert all(edge.fid != edge.tid for edge in graph.edges())

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            random_graph(0)


class TestPowerLawGraph:
    def test_counts(self):
        graph = power_law_graph(200, edges_per_node=2, seed=1)
        assert graph.num_nodes == 200
        assert graph.num_edges > 200

    def test_degree_skew(self):
        """Preferential attachment must produce a hub much larger than the
        median degree."""
        graph = power_law_graph(400, edges_per_node=2, seed=5)
        histogram = degree_histogram(graph)
        max_degree = max(histogram)
        degrees = sorted(
            degree for degree, count in histogram.items() for _ in range(count)
        )
        median_degree = degrees[len(degrees) // 2]
        assert max_degree >= 4 * median_degree

    def test_deterministic(self):
        first = power_law_graph(100, seed=4)
        second = power_law_graph(100, seed=4)
        assert sorted(first.edge_triples()) == sorted(second.edge_triples())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            power_law_graph(0)
        with pytest.raises(ValueError):
            power_law_graph(10, edges_per_node=0)


class TestStructuredGraphs:
    def test_grid_counts(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        # 3*3 horizontal + 2*4 vertical undirected edges, stored twice.
        assert graph.num_edges == 2 * (3 * 3 + 2 * 4)

    def test_grid_invalid(self):
        with pytest.raises(ValueError):
            grid_graph(0, 5)

    def test_path_graph_distances(self):
        graph = path_graph(5, weight_range=(1, 1))
        assert graph.num_nodes == 5
        assert graph.edge_cost(0, 1) == 1
        assert graph.edge_cost(4, 3) == 1

    def test_star_graph(self):
        graph = star_graph(6)
        assert graph.num_nodes == 7
        assert graph.out_degree(0) == 6

    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.num_edges == 5 * 4

    def test_statistics(self):
        graph = grid_graph(4, 4, seed=0)
        stats = compute_statistics(graph)
        assert stats.num_nodes == 16
        assert stats.min_edge_weight >= 1
        assert stats.num_reachable_from_sample == 16
