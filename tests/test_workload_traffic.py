"""Unit tests for the traffic workload package: generator determinism and
skew, harness verification and reporting, SLO verdicts."""

import json

import pytest

from repro.errors import InvalidQueryError
from repro.graph.generators import power_law_graph, random_graph
from repro.service import PathService
from repro.workload import (
    SLO,
    TrafficConfig,
    TrafficGenerator,
    run_traffic,
)
from repro.workload.harness import TrafficReport, percentile


@pytest.fixture
def graphs():
    return {"social": power_law_graph(80, edges_per_node=2, seed=7),
            "roads": random_graph(60, avg_degree=2.5, seed=11)}


def _nodes_of(graphs):
    return {name: graph.nodes() for name, graph in graphs.items()}


class TestTrafficConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(InvalidQueryError, match="zipf_s"):
            TrafficConfig(zipf_s=0.0)
        with pytest.raises(InvalidQueryError, match="hot_pairs"):
            TrafficConfig(hot_pairs=0)
        with pytest.raises(InvalidQueryError, match="cold_fraction"):
            TrafficConfig(cold_fraction=1.5)
        with pytest.raises(InvalidQueryError, match="unknown query kind"):
            TrafficConfig(kind_mix={"telepathy": 1.0})
        with pytest.raises(InvalidQueryError, match="kind_mix"):
            TrafficConfig(kind_mix={})
        with pytest.raises(InvalidQueryError, match="max_hops_range"):
            TrafficConfig(max_hops_range=(3, 1))
        with pytest.raises(InvalidQueryError, match="max_hops_range"):
            TrafficConfig(max_hops_range=(0, 4))

    def test_as_dict_round_trips_through_json(self):
        config = TrafficConfig(seed=9, graph_weights={"g": 2.0})
        assert json.loads(json.dumps(config.as_dict()))["seed"] == 9


class TestTrafficGenerator:
    def test_same_seed_same_stream(self, graphs):
        config = TrafficConfig(seed=123)
        streams = [
            list(TrafficGenerator(config, _nodes_of(graphs)).queries(300))
            for _ in range(2)]
        assert streams[0] == streams[1]

    def test_different_seed_different_stream(self, graphs):
        one = list(TrafficGenerator(TrafficConfig(seed=1),
                                    _nodes_of(graphs)).queries(100))
        two = list(TrafficGenerator(TrafficConfig(seed=2),
                                    _nodes_of(graphs)).queries(100))
        assert one != two

    def test_zipf_head_dominates_hot_traffic(self, graphs):
        config = TrafficConfig(seed=5, zipf_s=1.3, hot_pairs=10,
                               cold_fraction=0.0)
        generator = TrafficGenerator(config, _nodes_of(graphs))
        queries = list(generator.queries(2000))
        assert all(q.hot for q in queries)
        counts = {}
        for query in queries:
            key = (query.graph, query.source, query.target)
            counts[key] = counts.get(key, 0) + 1
        for name in graphs:
            pool = generator.hot_pool(name)
            assert len(pool) == 10
            head = counts.get((name,) + pool[0], 0)
            tail = counts.get((name,) + pool[-1], 0)
            assert head > tail, \
                f"rank 0 of {name!r} must outdraw rank {len(pool) - 1}"

    def test_kind_mix_and_hop_budgets(self, graphs):
        config = TrafficConfig(seed=8, max_hops_range=(2, 4))
        queries = list(TrafficGenerator(config,
                                        _nodes_of(graphs)).queries(500))
        kinds = {q.kind for q in queries}
        assert kinds == {"path", "reachability", "bounded_hop"}
        for query in queries:
            if query.kind == "bounded_hop":
                assert 2 <= query.max_hops <= 4
            else:
                assert query.max_hops is None

    def test_graph_weights_skew_graph_choice(self, graphs):
        config = TrafficConfig(
            seed=3, graph_weights={"social": 9.0, "roads": 1.0})
        queries = list(TrafficGenerator(config,
                                        _nodes_of(graphs)).queries(600))
        social = sum(1 for q in queries if q.graph == "social")
        assert social > 400

    def test_rejects_missing_weight_and_tiny_graphs(self, graphs):
        with pytest.raises(InvalidQueryError, match="graph_weights"):
            TrafficGenerator(TrafficConfig(graph_weights={"social": 1.0}),
                             _nodes_of(graphs))
        with pytest.raises(InvalidQueryError, match="at least 2 nodes"):
            TrafficGenerator(TrafficConfig(), {"dot": [0]})
        with pytest.raises(InvalidQueryError, match="at least one graph"):
            TrafficGenerator(TrafficConfig(), {})


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 50.0) == 5.0
        assert percentile(values, 95.0) == 10.0
        assert percentile(values, 99.0) == 10.0
        assert percentile(values, 100.0) == 10.0
        assert percentile([7.5], 50.0) == 7.5
        assert percentile([], 95.0) == 0.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class _LyingService:
    """Answers every query with distance 0 — all wrong (except trivially
    correct self pairs, which the generator never draws)."""

    class _Result:
        distance = 0.0
        path = ()

    def shortest_path(self, source, target, graph=None, kind="path",
                      max_hops=None):
        return self._Result()


class TestRunTraffic:
    def test_local_service_zero_wrong_answers(self, graphs):
        config = TrafficConfig(seed=21)
        generator = TrafficGenerator(config, _nodes_of(graphs))
        with PathService() as service:
            for name, graph in graphs.items():
                service.add_graph(name, graph)
            report = run_traffic(service, generator, 150, reference=graphs)
        assert report.total == 150
        assert report.wrong_answers == 0, report.wrong_samples
        assert report.errors == 0
        assert report.latency_ms["count"] == 150
        assert report.latency_ms["p50"] <= report.latency_ms["p95"] \
            <= report.latency_ms["p99"] <= report.latency_ms["max"]
        assert sum(report.per_kind.values()) == 150
        assert report.cache is not None and "local" in report.cache
        assert report.config["seed"] == 21
        # The artifact format is real JSON.
        assert json.loads(report.to_json())["total"] == 150

    def test_wrong_answers_are_caught(self, graphs):
        generator = TrafficGenerator(TrafficConfig(seed=21),
                                     _nodes_of(graphs))
        report = run_traffic(_LyingService(), generator, 50,
                             reference=graphs)
        assert report.wrong_answers > 0
        assert report.wrong_samples
        sample = report.wrong_samples[0]
        assert sample["got"] == 0.0 and sample["expected"] != 0.0
        slo = SLO()
        assert not slo.apply(report)
        assert any("wrong answers" in v for v in report.slo["violations"])

    def test_interrupt_arguments_go_together(self, graphs):
        generator = TrafficGenerator(TrafficConfig(), _nodes_of(graphs))
        with pytest.raises(ValueError, match="go together"):
            run_traffic(_LyingService(), generator, 5, interrupt_at=2)
        with pytest.raises(ValueError, match="count"):
            run_traffic(_LyingService(), generator, -1)


class TestSLO:
    def _report(self, **overrides):
        report = TrafficReport(
            total=100, errors=0, wrong_answers=0, qps=500.0,
            latency_ms={"count": 100, "p50": 1.0, "p95": 5.0, "p99": 9.0,
                        "mean": 2.0, "max": 12.0})
        for name, value in overrides.items():
            setattr(report, name, value)
        return report

    def test_met_slo_stamps_verdict(self):
        report = self._report()
        slo = SLO(p95_ms=10.0, p99_ms=20.0)
        assert slo.apply(report)
        assert report.slo["met"] is True
        assert report.slo["violations"] == []
        assert report.slo["declared"]["p95_ms"] == 10.0

    def test_latency_breach_is_reported_per_percentile(self):
        report = self._report()
        slo = SLO(p50_ms=0.5, p95_ms=4.0, p99_ms=20.0)
        violations = slo.check(report)
        assert len(violations) == 2
        assert any("p50" in v for v in violations)
        assert any("p95" in v for v in violations)

    def test_error_rate_and_qps_objectives(self):
        report = self._report(errors=3)
        assert any("error rate" in v
                   for v in SLO(max_error_rate=0.01).check(report))
        assert SLO(max_error_rate=0.05).check(report) == []
        assert any("qps" in v
                   for v in SLO(min_qps=1000.0).check(self._report()))
