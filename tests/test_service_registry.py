"""Tests for the backend registry (repro.core.store.registry)."""

import pytest

from repro.core.store import GraphStore, MiniDBGraphStore, SQLiteGraphStore
from repro.core.store.registry import (
    available_backends,
    backend_factory,
    create_store,
    register_backend,
    unregister_backend,
)
from repro.errors import (
    DuplicateBackendError,
    InvalidQueryError,
    UnknownBackendError,
)
from repro.graph.generators import path_graph
from repro.service import PathService


@pytest.fixture
def scratch_backend():
    """Register a throwaway backend for the test, cleaned up afterwards."""
    name = "scratch"
    register_backend(name, lambda path=None, buffer_capacity=256:
                     SQLiteGraphStore(path=path or ":memory:"))
    yield name
    try:
        unregister_backend(name)
    except UnknownBackendError:
        pass


class TestRegistry:
    def test_default_backends_registered(self):
        assert "minidb" in available_backends()
        assert "sqlite" in available_backends()

    def test_create_store_instances(self):
        minidb = create_store("minidb")
        sqlite = create_store("sqlite")
        try:
            assert isinstance(minidb, MiniDBGraphStore)
            assert isinstance(sqlite, SQLiteGraphStore)
            assert isinstance(minidb, GraphStore)
        finally:
            minidb.close()
            sqlite.close()

    def test_backend_names_match_class_attribute(self):
        assert MiniDBGraphStore.backend_name == "minidb"
        assert SQLiteGraphStore.backend_name == "sqlite"

    def test_lookup_is_case_insensitive(self):
        assert backend_factory("MiniDB") is backend_factory("minidb")

    def test_unknown_backend_raises(self):
        with pytest.raises(UnknownBackendError):
            create_store("oracle")

    def test_unknown_backend_is_invalid_query_error(self):
        # Legacy callers guarded backend selection with InvalidQueryError.
        with pytest.raises(InvalidQueryError):
            backend_factory("oracle")

    def test_duplicate_registration_raises(self, scratch_backend):
        with pytest.raises(DuplicateBackendError):
            register_backend(scratch_backend, lambda **kwargs: None)

    def test_duplicate_registration_replace(self, scratch_backend):
        sentinel = lambda path=None, buffer_capacity=256: MiniDBGraphStore(
            buffer_capacity=buffer_capacity, path=path)
        register_backend(scratch_backend, sentinel, replace=True)
        assert backend_factory(scratch_backend) is sentinel

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownBackendError):
            unregister_backend("never-registered")

    def test_unregister_removes(self, scratch_backend):
        unregister_backend(scratch_backend)
        assert scratch_backend not in available_backends()

    def test_registered_backend_usable_by_service(self, scratch_backend):
        graph = path_graph(5, weight_range=(2, 2))
        with PathService() as service:
            service.add_graph("g", graph, backend=scratch_backend)
            assert isinstance(service.store("g"), SQLiteGraphStore)
            result = service.shortest_path(0, 4, graph="g", method="BDJ")
            assert result.distance == 8
