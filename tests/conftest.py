"""Shared fixtures for the test suite.

Backend selection: the ``REPRO_TEST_BACKEND`` environment variable (the
CI test matrix's ``backend`` axis) picks which store backend the
backend-generic tests run against — ``minidb``, ``sqlite`` (the default),
or ``dbapi-fallback`` (the generic DB-API store speaking to the stdlib
fallback wire server started once per test session).  Tests opt in by
taking the :func:`test_backend` fixture; backend-specific tests are
unaffected.
"""

from __future__ import annotations

import os
import random
import uuid
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

import pytest

from repro.graph.generators import grid_graph, path_graph, power_law_graph, random_graph
from repro.graph.model import Graph

HERMETIC_BACKENDS = ("minidb", "sqlite", "dbapi-fallback")
"""Backends the suite can exercise with no external services."""


def selected_backend() -> str:
    """The CI matrix's backend choice (``sqlite`` when unset)."""
    name = os.environ.get("REPRO_TEST_BACKEND", "").strip().lower()
    if not name:
        return "sqlite"
    if name not in HERMETIC_BACKENDS:
        raise RuntimeError(
            f"REPRO_TEST_BACKEND={name!r} is not one of {HERMETIC_BACKENDS}"
        )
    return name


@pytest.fixture(scope="session")
def fallback_dsn() -> Iterator[str]:
    """One stdlib fallback wire server for the whole test session.

    Yields its base DSN; tests derive isolated namespaces from it via
    :func:`fresh_dsn` rather than using this DSN directly.
    """
    from repro.store.fallback_server import serve_in_thread

    handle = serve_in_thread()
    try:
        yield handle.dsn
    finally:
        handle.close()


@pytest.fixture
def fresh_dsn(fallback_dsn: str) -> Callable[[], str]:
    """Factory for fallback-server DSNs with a unique table prefix each —
    tests sharing the session server can never touch each other's
    tables."""
    def make() -> str:
        return f"{fallback_dsn}?table_prefix=t{uuid.uuid4().hex[:10]}_"
    return make


@dataclass
class BackendUnderTest:
    """What :func:`test_backend` hands to backend-generic tests.

    ``name`` is the registry backend name; ``make_path()`` returns a
    fresh ``path``/DSN for one store (``None`` for in-memory embedded
    stores, a unique-prefix DSN for the client-server backend).
    """

    name: str
    make_path: Callable[[], Optional[str]]


@pytest.fixture
def test_backend(request: pytest.FixtureRequest) -> BackendUnderTest:
    """The ``REPRO_TEST_BACKEND``-selected backend, ready to instantiate."""
    choice = selected_backend()
    if choice == "dbapi-fallback":
        make = request.getfixturevalue("fresh_dsn")
        return BackendUnderTest(name="dbapi", make_path=make)
    return BackendUnderTest(name=choice, make_path=lambda: None)


@pytest.fixture
def tiny_graph() -> Graph:
    """The 12-node weighted graph of the paper's Figure 1."""
    graph = Graph(directed=False)
    edges = [
        ("s", "b", 2), ("s", "c", 1), ("s", "d", 6),
        ("b", "e", 2), ("c", "d", 1), ("c", "e", 3),
        ("d", "i", 7), ("e", "f", 7), ("e", "g", 3),
        ("f", "h", 4), ("g", "h", 9), ("g", "j", 4),
        ("h", "t", 3), ("i", "j", 8), ("j", "t", 5),
        ("i", "t", 8), ("b", "c", 2), ("f", "t", 1),
    ]
    names = sorted({name for fid, tid, _ in edges for name in (fid, tid)})
    ids = {name: index for index, name in enumerate(names)}
    for fid, tid, cost in edges:
        graph.add_edge(ids[fid], ids[tid], cost)
    graph.node_names = ids  # type: ignore[attr-defined]
    return graph


@pytest.fixture
def small_path_graph() -> Graph:
    """A 10-node path with unit weights (known distances)."""
    return path_graph(10, weight_range=(1, 1), seed=1)


@pytest.fixture
def small_grid_graph() -> Graph:
    """A 5x5 grid with random weights."""
    return grid_graph(5, 5, seed=2)


@pytest.fixture
def small_power_graph() -> Graph:
    """A 120-node scale-free graph."""
    return power_law_graph(120, edges_per_node=2, seed=3)


@pytest.fixture
def small_random_graph() -> Graph:
    """A 150-node random graph with average degree 3."""
    return random_graph(150, avg_degree=3.0, seed=4)


@pytest.fixture
def query_rng() -> random.Random:
    """Deterministic RNG for sampling query endpoints in tests."""
    return random.Random(42)
