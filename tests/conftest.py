"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.generators import grid_graph, path_graph, power_law_graph, random_graph
from repro.graph.model import Graph


@pytest.fixture
def tiny_graph() -> Graph:
    """The 12-node weighted graph of the paper's Figure 1."""
    graph = Graph(directed=False)
    edges = [
        ("s", "b", 2), ("s", "c", 1), ("s", "d", 6),
        ("b", "e", 2), ("c", "d", 1), ("c", "e", 3),
        ("d", "i", 7), ("e", "f", 7), ("e", "g", 3),
        ("f", "h", 4), ("g", "h", 9), ("g", "j", 4),
        ("h", "t", 3), ("i", "j", 8), ("j", "t", 5),
        ("i", "t", 8), ("b", "c", 2), ("f", "t", 1),
    ]
    names = sorted({name for fid, tid, _ in edges for name in (fid, tid)})
    ids = {name: index for index, name in enumerate(names)}
    for fid, tid, cost in edges:
        graph.add_edge(ids[fid], ids[tid], cost)
    graph.node_names = ids  # type: ignore[attr-defined]
    return graph


@pytest.fixture
def small_path_graph() -> Graph:
    """A 10-node path with unit weights (known distances)."""
    return path_graph(10, weight_range=(1, 1), seed=1)


@pytest.fixture
def small_grid_graph() -> Graph:
    """A 5x5 grid with random weights."""
    return grid_graph(5, 5, seed=2)


@pytest.fixture
def small_power_graph() -> Graph:
    """A 120-node scale-free graph."""
    return power_law_graph(120, edges_per_node=2, seed=3)


@pytest.fixture
def small_random_graph() -> Graph:
    """A 150-node random graph with average degree 3."""
    return random_graph(150, avg_degree=3.0, seed=4)


@pytest.fixture
def query_rng() -> random.Random:
    """Deterministic RNG for sampling query endpoints in tests."""
    return random.Random(42)
