"""Tests for the hash index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DuplicateKeyError
from repro.index.hash_index import HashIndex


class TestHashIndex:
    def test_insert_and_search(self):
        index = HashIndex()
        index.insert("k", 1)
        assert index.search("k") == [1]
        assert index.contains("k")
        assert not index.contains("missing")

    def test_duplicates_accumulate(self):
        index = HashIndex()
        index.insert(1, "a")
        index.insert(1, "b")
        assert sorted(index.search(1)) == ["a", "b"]
        assert len(index) == 2

    def test_unique_mode(self):
        index = HashIndex(unique=True)
        index.insert(1, "a")
        with pytest.raises(DuplicateKeyError):
            index.insert(1, "b")

    def test_delete_all_for_key(self):
        index = HashIndex()
        index.insert(1, "a")
        index.insert(1, "b")
        assert index.delete(1) == 2
        assert index.search(1) == []

    def test_delete_single_value(self):
        index = HashIndex()
        index.insert(1, "a")
        index.insert(1, "b")
        assert index.delete(1, "a") == 1
        assert index.search(1) == ["b"]

    def test_delete_missing(self):
        index = HashIndex()
        assert index.delete(9) == 0
        index.insert(9, "x")
        assert index.delete(9, "y") == 0

    def test_items_and_keys(self):
        index = HashIndex()
        index.insert(1, "a")
        index.insert(2, "b")
        assert sorted(index.items()) == [(1, "a"), (2, "b")]
        assert sorted(index.keys()) == [1, 2]

    def test_clear(self):
        index = HashIndex()
        index.insert(1, "a")
        index.clear()
        assert len(index) == 0
        assert not index.contains(1)


@settings(max_examples=75, deadline=None)
@given(entries=st.lists(st.tuples(st.integers(-50, 50), st.integers()), max_size=150))
def test_property_hash_index_matches_dict(entries):
    """The hash index behaves like a plain dict of lists."""
    index = HashIndex()
    reference: dict = {}
    for key, value in entries:
        index.insert(key, value)
        reference.setdefault(key, []).append(value)
    assert len(index) == sum(len(values) for values in reference.values())
    for key, values in reference.items():
        assert index.search(key) == values
