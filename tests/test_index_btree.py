"""Unit and property-based tests for the B+ tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DuplicateKeyError
from repro.index.btree import BPlusTree


class TestBPlusTreeBasics:
    def test_empty_tree(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.search(1) == []
        assert tree.min_key() is None
        assert tree.max_key() is None

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        assert tree.search(5) == ["a"]
        assert tree.contains(5)
        assert not tree.contains(6)

    def test_duplicate_keys_collect_values(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert sorted(tree.search(1)) == ["a", "b"]
        assert len(tree) == 2

    def test_unique_rejects_duplicates(self):
        tree = BPlusTree(order=4, unique=True)
        tree.insert(1, "a")
        with pytest.raises(DuplicateKeyError):
            tree.insert(1, "b")

    def test_splits_keep_all_keys(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key * 10)
        assert len(tree) == 100
        assert tree.height > 1
        for key in range(100):
            assert tree.search(key) == [key * 10]

    def test_reverse_insertion_order(self):
        tree = BPlusTree(order=4)
        for key in reversed(range(50)):
            tree.insert(key, key)
        assert [key for key, _ in tree.items()] == list(range(50))

    def test_min_max(self):
        tree = BPlusTree(order=4)
        for key in (5, 1, 9, 3):
            tree.insert(key, key)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)


class TestBPlusTreeRangeScan:
    @pytest.fixture
    def tree(self) -> BPlusTree:
        tree = BPlusTree(order=4)
        for key in range(0, 40, 2):
            tree.insert(key, f"v{key}")
        return tree

    def test_full_scan_sorted(self, tree):
        keys = [key for key, _ in tree.items()]
        assert keys == sorted(keys)
        assert len(keys) == 20

    def test_bounded_range(self, tree):
        keys = [key for key, _ in tree.range_scan(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self, tree):
        keys = [key for key, _ in tree.range_scan(10, 20, include_low=False,
                                                  include_high=False)]
        assert keys == [12, 14, 16, 18]

    def test_open_ended_low(self, tree):
        keys = [key for key, _ in tree.range_scan(None, 6)]
        assert keys == [0, 2, 4, 6]

    def test_open_ended_high(self, tree):
        keys = [key for key, _ in tree.range_scan(34, None)]
        assert keys == [34, 36, 38]

    def test_range_between_keys(self, tree):
        assert list(tree.range_scan(11, 11)) == []


class TestBPlusTreeDelete:
    def test_delete_existing(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert tree.delete(1) == 1
        assert tree.search(1) == []
        assert len(tree) == 0

    def test_delete_specific_value(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a") == 1
        assert tree.search(1) == ["b"]

    def test_delete_missing(self):
        tree = BPlusTree(order=4)
        assert tree.delete(42) == 0
        tree.insert(1, "a")
        assert tree.delete(1, "zzz") == 0

    def test_clear(self):
        tree = BPlusTree(order=4)
        for key in range(20):
            tree.insert(key, key)
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []


@settings(max_examples=100, deadline=None)
@given(entries=st.lists(st.tuples(st.integers(-1000, 1000), st.integers()), max_size=200))
def test_property_btree_matches_dict_of_lists(entries):
    """The B+ tree behaves like a sorted multimap for any insertion order."""
    tree = BPlusTree(order=5)
    reference: dict = {}
    for key, value in entries:
        tree.insert(key, value)
        reference.setdefault(key, []).append(value)
    tree.check_invariants()
    assert len(tree) == sum(len(values) for values in reference.values())
    for key, values in reference.items():
        assert sorted(tree.search(key), key=repr) == sorted(values, key=repr)
    assert [key for key in tree.keys()] == sorted(reference)


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(0, 300), min_size=1, max_size=150),
    low=st.integers(0, 300),
    high=st.integers(0, 300),
)
def test_property_range_scan_matches_filter(keys, low, high):
    """Range scans agree with filtering the full key set."""
    if low > high:
        low, high = high, low
    tree = BPlusTree(order=4)
    for key in keys:
        tree.insert(key, key)
    scanned = [key for key, _ in tree.range_scan(low, high)]
    expected = sorted(key for key in keys if low <= key <= high)
    assert scanned == expected


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(0, 100), min_size=1, max_size=80),
    data=st.data(),
)
def test_property_delete_then_search(keys, data):
    """Deleted keys disappear, the rest stay intact."""
    tree = BPlusTree(order=4)
    for key in keys:
        tree.insert(key, key)
    to_delete = data.draw(st.sets(st.sampled_from(keys), max_size=len(keys)))
    for key in to_delete:
        tree.delete(key)
    tree.check_invariants()
    for key in set(keys):
        if key in to_delete:
            assert tree.search(key) == []
        else:
            assert key in [k for k in tree.keys()]
