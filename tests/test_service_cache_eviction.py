"""Tests for cache eviction policies (TTL, memory footprint) and the
negative result cache."""

import pytest

from repro.core.path import PathResult
from repro.errors import PathNotFoundError
from repro.graph.generators import path_graph
from repro.service import PathService
from repro.service.cache import ResultCache, estimate_result_bytes


def _result(source=0, target=1, hops=1):
    path = list(range(source, source + hops + 1))
    return PathResult(source, target, float(hops), path, None)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTTLEviction:
    def test_expired_entry_is_a_miss(self):
        cache = ResultCache(capacity=8, ttl_seconds=10.0)
        clock = FakeClock()
        cache._clock = clock
        cache.put(("g", 0, 1), _result())
        assert cache.get(("g", 0, 1)) is not None
        clock.advance(11.0)
        assert cache.get(("g", 0, 1)) is None
        stats = cache.stats()
        assert stats.ttl_evictions == 1
        assert stats.evictions == 1
        assert stats.size == 0

    def test_fresh_entry_survives(self):
        cache = ResultCache(capacity=8, ttl_seconds=10.0)
        clock = FakeClock()
        cache._clock = clock
        cache.put(("g", 0, 1), _result())
        clock.advance(9.0)
        assert cache.get(("g", 0, 1)) is not None
        assert cache.stats().ttl_evictions == 0

    def test_put_sweeps_expired_entries(self):
        cache = ResultCache(capacity=8, ttl_seconds=10.0)
        clock = FakeClock()
        cache._clock = clock
        cache.put(("g", 0, 1), _result())
        cache.put(("g", 0, 2), _result(target=2))
        clock.advance(11.0)
        cache.put(("g", 0, 3), _result(target=3))
        stats = cache.stats()
        assert stats.size == 1
        assert stats.ttl_evictions == 2

    def test_negative_entries_expire_too(self):
        cache = ResultCache(capacity=8, ttl_seconds=10.0,
                            negative_capacity=8)
        clock = FakeClock()
        cache._clock = clock
        cache.put_negative(("g", 0, 9), "no path")
        assert cache.get_negative(("g", 0, 9)) == "no path"
        clock.advance(11.0)
        assert cache.get_negative(("g", 0, 9)) is None
        stats = cache.stats()
        # A negative expiry counts in both the TTL and aggregate counters
        # (ttl_evictions can never exceed evictions).
        assert stats.ttl_evictions == 1
        assert stats.evictions == 1

    def test_peek_honours_ttl(self):
        cache = ResultCache(capacity=8, ttl_seconds=10.0)
        clock = FakeClock()
        cache._clock = clock
        cache.put(("g", 0, 1), _result())
        clock.advance(11.0)
        assert cache.peek(("g", 0, 1)) is None

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=8, ttl_seconds=0.0)


class TestMemoryEviction:
    def test_lru_tail_evicted_past_budget(self):
        entry_size = estimate_result_bytes(_result())
        cache = ResultCache(capacity=100, max_bytes=3 * entry_size)
        for target in range(1, 5):  # four entries, budget fits three
            cache.put(("g", 0, target), _result(target=target))
        stats = cache.stats()
        assert stats.size == 3
        assert stats.memory_evictions == 1
        assert stats.memory_bytes <= 3 * entry_size
        assert cache.get(("g", 0, 1)) is None  # oldest went first
        assert cache.get(("g", 0, 4)) is not None

    def test_oversized_result_passes_through(self):
        cache = ResultCache(capacity=100, max_bytes=64)
        cache.put(("g", 0, 1), _result(hops=50))
        # The single entry exceeds the budget but is never self-evicted.
        assert cache.get(("g", 0, 1)) is not None
        assert cache.stats().size == 1

    def test_memory_accounting_tracks_replacements(self):
        cache = ResultCache(capacity=100, max_bytes=10_000)
        cache.put(("g", 0, 1), _result(hops=1))
        small = cache.stats().memory_bytes
        cache.put(("g", 0, 1), _result(hops=30))
        grown = cache.stats().memory_bytes
        assert grown > small
        cache.clear()
        assert cache.stats().memory_bytes == 0

    def test_service_exposes_eviction_knobs(self, small_grid_graph):
        with PathService(cache_size=100, cache_max_bytes=3000) as service:
            service.add_graph("default", small_grid_graph)
            for target in range(1, 10):
                service.shortest_path(0, target)
            info = service.cache_info()
            assert info.max_bytes == 3000
            # The budget holds only a couple of results; the LRU tail went.
            assert info.size < 9
            assert info.memory_evictions > 0

    def test_batch_stats_surface_evictions(self, small_grid_graph):
        with PathService(cache_size=2) as service:
            service.add_graph("default", small_grid_graph)
            batch = service.shortest_path_many(
                [(0, t) for t in range(1, 6)])
            assert batch.stats.evictions == 3


class TestNegativeCache:
    def _disconnected_service(self, negative_cache_size=1024, **kwargs):
        graph = path_graph(3)
        graph.add_node(9)
        service = PathService(negative_cache_size=negative_cache_size,
                              **kwargs)
        service.add_graph("default", graph)
        return service

    def test_repeat_miss_skips_execution(self):
        with self._disconnected_service() as service:
            with pytest.raises(PathNotFoundError):
                service.shortest_path(0, 9)
            with pytest.raises(PathNotFoundError) as second:
                service.shortest_path(0, 9)
            info = service.cache_info()
            assert info.negative_hits == 1
            assert info.negative_size == 1
            # The replayed verdict carries the original message.
            assert "9" in str(second.value)

    def test_negative_capacity_bounds_entries(self):
        cache = ResultCache(capacity=8, negative_capacity=2)
        for target in range(5):
            cache.put_negative(("g", 0, target), "no path")
        assert cache.stats().negative_size == 2

    def test_zero_negative_capacity_disables(self):
        cache = ResultCache(capacity=8, negative_capacity=0)
        cache.put_negative(("g", 0, 9), "no path")
        assert cache.get_negative(("g", 0, 9)) is None

    def test_invalidate_graph_drops_negative_entries(self):
        cache = ResultCache(capacity=8, negative_capacity=8)
        cache.put_negative(("g", 0, 9), "no path")
        cache.put_negative(("h", 0, 9), "no path")
        assert cache.invalidate_graph("g") == 1
        assert cache.get_negative(("g", 0, 9)) is None
        assert cache.get_negative(("h", 0, 9)) == "no path"

    def test_drop_graph_invalidates_negative_verdicts(self):
        with self._disconnected_service() as service:
            with pytest.raises(PathNotFoundError):
                service.shortest_path(0, 9)
            service.drop_graph("default")
            # Re-register with a connecting edge: the old verdict must not
            # shadow the now-reachable pair.
            graph = path_graph(3)
            graph.add_edge(2, 9, 1.0)
            service.add_graph("default", graph)
            result = service.shortest_path(0, 9)
            assert result.distance > 0

    def test_parallel_batch_hits_negative_cache(self):
        with self._disconnected_service(cache_size=1024) as service:
            with pytest.raises(PathNotFoundError):
                service.shortest_path(0, 9)
            batch = service.shortest_path_many(
                [(0, 9), (0, 9), (0, 2), (0, 9)], concurrency=3)
            assert batch.stats.not_found == 3
            assert batch.stats.negative_hits == 3
            assert batch.results[2] is not None

    def test_parallel_batch_populates_negative_cache(self):
        with self._disconnected_service(cache_size=1024) as service:
            batch = service.shortest_path_many(
                [(0, 9), (1, 9)], concurrency=2)
            assert batch.stats.not_found == 2
            assert service.cache_info().negative_size == 2

    def test_max_iterations_never_caches_negatively(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            with pytest.raises(PathNotFoundError):
                service.shortest_path(0, 24, method="BDJ", max_iterations=1)
            # A capped run's failure is not a verdict about reachability.
            assert service.cache_info().negative_size == 0
            assert service.shortest_path(0, 24).distance > 0
