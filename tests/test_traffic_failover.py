"""Fault injection: Zipf traffic over a networked two-shard router with a
server killed mid-stream.

The harness keeps streaming through the kill (transport errors are
counted, not raised), the replicated graph fails over to the surviving
shard, and — the point of the whole exercise — **every answer that comes
back is still differentially correct**.  The failover story the report
tells must agree with the router's own :class:`ShardHealth` accounting.

Also here: unit tests for the :class:`ShardHealth` cooldown arithmetic
itself (streak reset, expiry boundary, exponential growth and its cap,
all-replicas-down candidate ordering), driven through the router's
``_mark_failure`` / ``_mark_success`` / ``_candidates`` internals.
"""

import os
import time

import pytest

from repro.graph.generators import power_law_graph, random_graph
from repro.serve import ShardServer
from repro.service import PathService
from repro.shard import ShardRouter
from repro.shard.router import (
    FAILOVER_COOLDOWN,
    FAILOVER_COOLDOWN_MAX,
    ShardHealth,
)
from repro.workload import SLO, TrafficConfig, TrafficGenerator, run_traffic

LTHD = 3.0


def _seed_catalog(catalog_dir, graphs):
    with PathService(catalog_path=catalog_dir, cache_size=0) as service:
        for name, graph in graphs.items():
            service.add_graph(name, graph, backend="sqlite",
                              db_path=os.path.join(catalog_dir, f"{name}.db"))
            service.build_segtable(name, lthd=LTHD)


@pytest.fixture
def killable_topology(tmp_path):
    """A remote shard (behind HTTP) owning the replicated graph ``hot``,
    and a local shard hosting ``cold`` plus the ``hot`` replica."""
    graphs = {
        "hot": power_law_graph(120, edges_per_node=2, seed=5),
        "cold": random_graph(100, avg_degree=2.5, seed=6),
    }
    remote_catalog = str(tmp_path / "remote-shard")
    local_catalog = str(tmp_path / "local-shard")
    _seed_catalog(remote_catalog, {"hot": graphs["hot"]})
    # The replica must be bit-identical content (same fingerprint), or
    # the router refuses to fail over to it.
    _seed_catalog(local_catalog, {"cold": graphs["cold"],
                                  "hot": graphs["hot"]})
    remote_service = PathService.open(remote_catalog,
                                      shard_id="remote-shard")
    server = ShardServer(remote_service, port=0, own_service=True).start()
    try:
        yield server, remote_catalog, local_catalog, graphs
    finally:
        server.close()


class TestTrafficFailover:
    def test_kill_mid_stream_zero_wrong_answers(self, killable_topology):
        server, _, local_catalog, graphs = killable_topology
        remote_name = f"{server.host}:{server.port}"
        config = TrafficConfig(
            seed=77, hot_pairs=10, cold_fraction=0.2,
            graph_weights={"hot": 2.0, "cold": 1.0})
        generator = TrafficGenerator(
            config, {name: graph.nodes()
                     for name, graph in graphs.items()})
        count = 120
        with ShardRouter.open([server.url, local_catalog],
                              names=[remote_name, "local"],
                              remote_retries=0) as router:
            assert router.owner("hot") == remote_name
            report = run_traffic(
                router, generator, count, reference=graphs,
                interrupt_at=count // 3, interrupt=server.close)
            health = router.shard_health()

        # The one non-negotiable: every answer the stream produced was
        # differentially correct, through the kill and the failover.
        assert report.total == count
        assert report.wrong_answers == 0, report.wrong_samples
        # "hot" has a live replica and "cold" never left the local
        # shard, so the kill must not surface a single error either.
        assert report.errors == 0, report.error_samples
        assert report.not_found < count  # the stream did answer queries

        # The report's failover snapshot is the router's ShardHealth
        # accounting, and the two must agree: the killed shard shows
        # transport errors and a failure streak; the survivor is clean.
        assert report.failover is not None
        assert set(report.failover) == set(health) == {remote_name, "local"}
        assert health[remote_name]["errors"] >= 1
        assert health[remote_name]["consecutive_failures"] >= 1
        assert health[remote_name]["last_error"]
        assert health["local"]["errors"] == 0
        assert health["local"]["consecutive_failures"] == 0
        assert not health["local"]["down"]
        # The snapshot was taken at stream end, while the remote's
        # errors had already been recorded.
        assert report.failover[remote_name]["errors"] >= 1

        # An SLO that budgets nothing for correctness still passes:
        # failover kept both wrong answers and errors at zero.
        slo = SLO(max_error_rate=0.0, max_wrong_answers=0)
        assert slo.apply(report), report.slo["violations"]

    def test_queries_after_kill_answered_by_replica(self, killable_topology):
        server, _, local_catalog, graphs = killable_topology
        remote_name = f"{server.host}:{server.port}"
        nodes = sorted(graphs["hot"].nodes())
        with ShardRouter.open([server.url, local_catalog],
                              names=[remote_name, "local"],
                              remote_retries=0) as router:
            before = router.shortest_path(nodes[0], nodes[-1], graph="hot",
                                          kind="reachability",
                                          use_cache=False)
            server.close()
            after = router.shortest_path(nodes[0], nodes[-1], graph="hot",
                                         kind="reachability",
                                         use_cache=False)
            assert (before.distance, before.path) == (after.distance,
                                                      after.path)
            health = router.shard_health()
            assert health[remote_name]["errors"] >= 1
            assert health[remote_name]["down"]


class TestShardHealthCooldown:
    """The cooldown arithmetic, pinned at its edges."""

    def _router(self, tmp_path):
        catalog = str(tmp_path / "solo")
        _seed_catalog(catalog, {"g": random_graph(30, avg_degree=2.0,
                                                  seed=9)})
        return ShardRouter.open([catalog], names=["solo"])

    def test_streak_resets_on_success_but_errors_accumulate(self, tmp_path):
        with self._router(tmp_path) as router:
            router._mark_failure("solo", RuntimeError("boom 1"))
            router._mark_failure("solo", RuntimeError("boom 2"))
            health = router._health["solo"]
            assert health.errors == 2
            assert health.consecutive_failures == 2
            assert health.is_down()
            router._mark_success("solo")
            assert health.errors == 2  # lifetime total survives
            assert health.consecutive_failures == 0  # streak does not
            assert health.down_until == 0.0
            assert not health.is_down()
            # The next failure starts a FRESH streak with the base
            # cooldown, not a continuation of the old one.
            router._mark_failure("solo", RuntimeError("boom 3"))
            assert health.consecutive_failures == 1
            remaining = health.down_until - time.monotonic()
            assert remaining <= FAILOVER_COOLDOWN + 1e-6

    def test_cooldown_expiry_boundary_is_strict(self):
        health = ShardHealth(shard="s", down_until=100.0)
        # Strictly before the deadline: down.  AT the deadline: up —
        # `now < down_until`, so the boundary instant is already out of
        # cooldown (a shard never stays down one tick longer than asked).
        assert health.is_down(now=99.999)
        assert not health.is_down(now=100.0)
        assert not health.is_down(now=100.001)

    def test_cooldown_doubles_per_failure_and_caps(self, tmp_path):
        with self._router(tmp_path) as router:
            health = router._health["solo"]
            for streak in range(1, 12):
                router._mark_failure("solo", RuntimeError("boom"))
                remaining = health.down_until - time.monotonic()
                expected = min(FAILOVER_COOLDOWN * 2 ** (streak - 1),
                               FAILOVER_COOLDOWN_MAX)
                # The deadline is jittered over [expected/2, expected] to
                # decorrelate probe storms; bound both sides of the draw.
                assert remaining <= expected + 1e-6
                assert remaining > expected / 2 - 0.1
            # 0.25 * 2^10 = 256s, far past the 30s cap.
            assert (health.down_until - time.monotonic()
                    <= FAILOVER_COOLDOWN_MAX + 1e-6)

    def test_all_replicas_down_keeps_preference_order(self, tmp_path):
        graphs = {"g": random_graph(30, avg_degree=2.0, seed=9)}
        cat_a = str(tmp_path / "a")
        cat_b = str(tmp_path / "b")
        _seed_catalog(cat_a, graphs)
        _seed_catalog(cat_b, graphs)  # identical content = replica
        with ShardRouter.open([cat_a, cat_b], names=["a", "b"]) as router:
            assert router.owner("g") == "a"
            assert router._candidates("g") == ["a", "b"]
            # Owner down: the replica is preferred, but the owner stays
            # in the list as a last resort.
            router._mark_failure("a", RuntimeError("boom"))
            assert router._candidates("g") == ["b", "a"]
            # Everything down: ordering degrades back to owner-first so
            # an all-down replica set yields an error, never a refusal.
            router._mark_failure("b", RuntimeError("boom"))
            assert router._candidates("g") == ["a", "b"]
            # The owner recovering puts it back in front.
            router._mark_success("a")
            assert router._candidates("g") == ["a", "b"]
