"""Tests for the per-graph store pool: checkout/checkin, lazy growth,
capability clamping, exhaustion, error paths, reset, and close."""

import threading
import time

import pytest

from repro.core.store.base import GraphStore
from repro.core.store.minidb import MiniDBGraphStore
from repro.core.store.registry import create_store
from repro.core.store.sqlite import SQLiteGraphStore
from repro.errors import (
    PoolClosedError,
    PoolTimeoutError,
    StoreCloneUnsupportedError,
)
from repro.graph.generators import path_graph
from repro.service.pool import StorePool


class _SerialOnlyStore(MiniDBGraphStore):
    """A backend that never allows concurrent readers."""

    supports_concurrent_readers = False


def _loaded_store(graph, cls=MiniDBGraphStore):
    store = cls()
    store.load_graph(graph)
    return store


def _rehydrator(graph):
    def factory(primary: GraphStore) -> GraphStore:
        store = create_store(primary.backend_name)
        store.load_graph(graph)
        return store
    return factory


@pytest.fixture
def graph():
    return path_graph(6, weight_range=(1, 1), seed=11)


@pytest.fixture
def pool(graph):
    pool = StorePool(_loaded_store(graph), _rehydrator(graph), size=3)
    yield pool
    pool.close()


class TestCheckoutCheckin:
    def test_primary_is_member_zero(self, graph):
        primary = _loaded_store(graph)
        pool = StorePool(primary, _rehydrator(graph), size=2)
        assert pool.checkout() is primary
        pool.checkin(primary)
        pool.close()

    def test_lazy_growth_up_to_capacity(self, pool):
        assert pool.stats().created == 1
        first = pool.checkout()
        second = pool.checkout()
        third = pool.checkout()
        assert len({id(first), id(second), id(third)}) == 3
        assert pool.stats().created == 3
        assert pool.stats().in_use == 3
        for member in (first, second, third):
            pool.checkin(member)
        assert pool.stats().idle == 3

    def test_checkin_makes_member_reusable(self, pool):
        store = pool.checkout()
        pool.checkin(store)
        assert pool.checkout() is store

    def test_lease_returns_member_on_success(self, pool):
        with pool.lease() as store:
            assert pool.stats().in_use == 1
            assert store is not None
        assert pool.stats().in_use == 0

    def test_lease_returns_member_on_error(self, pool):
        with pytest.raises(RuntimeError):
            with pool.lease():
                raise RuntimeError("query blew up mid-flight")
        assert pool.stats().in_use == 0
        assert pool.stats().idle == 1

    def test_replica_creation_failure_releases_slot(self, graph):
        def explode(primary):
            raise RuntimeError("cannot rehydrate")

        pool = StorePool(_loaded_store(graph), explode, size=2)
        primary = pool.checkout()
        with pytest.raises(RuntimeError):
            pool.checkout(timeout=0.1)
        # The reserved slot was released: returning the primary makes a
        # member available again rather than leaking capacity.
        pool.checkin(primary)
        assert pool.checkout() is primary
        pool.checkin(primary)
        pool.close()


class TestCapacity:
    def test_serial_only_backend_clamped_to_one(self, graph):
        pool = StorePool(_loaded_store(graph, _SerialOnlyStore),
                         _rehydrator(graph), size=8)
        assert pool.capacity == 1
        assert pool.resize(16) == 1
        pool.close()

    def test_resize_grows_but_never_shrinks(self, pool):
        assert pool.capacity == 3
        assert pool.resize(5) == 5
        assert pool.resize(2) == 5

    def test_size_must_be_positive(self, graph):
        store = _loaded_store(graph)
        with pytest.raises(ValueError):
            StorePool(store, _rehydrator(graph), size=0)
        store.close()


class TestExhaustion:
    def test_checkout_times_out_when_exhausted(self, graph):
        pool = StorePool(_loaded_store(graph), _rehydrator(graph), size=1)
        store = pool.checkout()
        with pytest.raises(PoolTimeoutError):
            pool.checkout(timeout=0.05)
        assert pool.stats().timeouts == 1
        pool.checkin(store)
        pool.close()

    def test_blocked_checkout_wakes_on_checkin(self, pool):
        members = [pool.checkout() for _ in range(3)]
        obtained = []

        def blocked_waiter():
            store = pool.checkout(timeout=5.0)
            obtained.append(store)
            pool.checkin(store)

        thread = threading.Thread(target=blocked_waiter)
        thread.start()
        pool.checkin(members.pop())
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(obtained) == 1
        assert pool.stats().waits >= 1
        for member in members:
            pool.checkin(member)


class TestResetAndClose:
    def test_reset_retires_idle_replicas_keeps_primary(self, graph):
        primary = _loaded_store(graph)
        pool = StorePool(primary, _rehydrator(graph), size=3)
        members = [pool.checkout() for _ in range(3)]
        for member in members:
            pool.checkin(member)
        assert pool.stats().created == 3
        pool.reset()
        assert pool.stats().created == 1
        assert pool.checkout() is primary
        pool.checkin(primary)
        pool.close()

    def test_reset_retires_checked_out_replica_on_checkin(self, graph):
        primary = _loaded_store(graph)
        pool = StorePool(primary, _rehydrator(graph), size=2)
        first = pool.checkout()
        replica = pool.checkout()
        assert replica is not primary
        pool.reset()
        pool.checkin(replica)
        # The stale replica was closed instead of rejoining the shelf.
        assert pool.stats().created == 1
        assert pool.stats().idle == 0
        pool.checkin(first)
        pool.close()

    def test_replica_built_during_reset_is_retired(self, graph):
        build_started = threading.Event()
        proceed = threading.Event()

        def slow_factory(primary):
            build_started.set()
            assert proceed.wait(timeout=5.0)
            store = create_store(primary.backend_name)
            store.load_graph(graph)
            return store

        primary = _loaded_store(graph)
        pool = StorePool(primary, slow_factory, size=2)
        first = pool.checkout()  # primary busy -> next checkout grows
        obtained = []
        thread = threading.Thread(
            target=lambda: obtained.append(pool.checkout(timeout=5.0)))
        thread.start()
        assert build_started.wait(timeout=5.0)
        pool.reset()  # lands while the replica is mid-build
        proceed.set()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        pool.checkin(obtained[0])
        # The replica reflects pre-reset primary state: retired, not shelved.
        assert pool.stats().created == 1
        assert pool.stats().idle == 0
        pool.checkin(first)
        pool.close()

    def test_drain_waits_for_every_member(self, graph):
        primary = _loaded_store(graph)
        pool = StorePool(primary, _rehydrator(graph), size=2)
        first = pool.checkout()
        second = pool.checkout()
        with pytest.raises(PoolTimeoutError):
            with pool.drain(timeout=0.05):
                pass  # pragma: no cover - enter raises
        pool.checkin(second)
        sizes = []

        def do_drain():
            with pool.drain(timeout=5.0) as members:
                sizes.append(len(members))
                for member in members:
                    pool.checkin(member)

        thread = threading.Thread(target=do_drain)
        thread.start()
        pool.checkin(first)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert sizes == [2]
        assert pool.stats().idle == 2
        pool.close()

    def test_failed_drain_returns_collected_members(self, graph):
        primary = _loaded_store(graph)
        pool = StorePool(primary, _rehydrator(graph), size=2)
        replica = pool.checkout()
        second = pool.checkout()
        pool.checkin(second)  # one idle, one still out
        with pytest.raises(PoolTimeoutError):
            with pool.drain(timeout=0.05):
                pass  # pragma: no cover - enter raises
        # The partially-collected member went back on the shelf.
        assert pool.stats().idle == 1
        pool.checkin(replica)
        pool.close()

    def test_drain_seals_the_pool_against_growth(self, graph):
        pool = StorePool(_loaded_store(graph), _rehydrator(graph), size=4)
        with pool.drain(timeout=5.0) as members:
            assert len(members) == 1  # only the primary existed
            # Capacity would allow growth, but the barrier forbids it: a
            # fresh reader mid-build would race the writer.
            with pytest.raises(PoolTimeoutError):
                pool.checkout(timeout=0.05)
            for member in members:
                pool.checkin(member)
        # Barrier lifted: checkouts (and growth) work again.
        first = pool.checkout()
        second = pool.checkout()
        pool.checkin(first)
        pool.checkin(second)
        pool.close()

    def test_close_during_drain_does_not_leak_members(self, graph):
        primary = _loaded_store(graph)
        pool = StorePool(primary, _rehydrator(graph), size=2)
        first = pool.checkout()   # the primary, held by a "query"
        second = pool.checkout()  # a replica
        pool.checkin(second)      # one idle for the drain to collect
        outcomes = []

        def do_drain():
            try:
                with pool.drain(timeout=5.0):
                    pass  # pragma: no cover - close() wins the race
            except PoolClosedError as exc:
                outcomes.append(exc)

        thread = threading.Thread(target=do_drain)
        thread.start()
        time.sleep(0.05)  # let the drain collect the idle replica
        pool.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(outcomes) == 1
        pool.checkin(first)
        # Every member was closed somewhere: nothing lingers in the pool.
        assert pool.stats().created == 0
        assert pool.stats().idle == 0

    def test_primary_surviving_failed_quiesce(self, graph):
        primary = _loaded_store(graph)

        def bad_quiesce():
            raise RuntimeError("transient lock hiccup")

        primary.quiesce = bad_quiesce  # type: ignore[method-assign]
        pool = StorePool(primary, _rehydrator(graph), size=2)
        store = pool.checkout()
        pool.checkin(store)
        # A transient quiesce failure must not brick the pool: the primary
        # goes back on the shelf rather than being closed.
        assert pool.stats().created == 1
        assert pool.checkout() is primary
        pool.checkin(primary)
        pool.close()

    def test_broken_replica_retired_on_checkin(self, graph):
        pool = StorePool(_loaded_store(graph), _rehydrator(graph), size=2)
        first = pool.checkout()  # the primary
        replica = pool.checkout()

        def bad_quiesce():
            raise RuntimeError("replica connection died")

        replica.quiesce = bad_quiesce  # type: ignore[method-assign]
        pool.checkin(replica)
        assert pool.stats().created == 1
        assert pool.stats().idle == 0
        pool.checkin(first)
        pool.close()

    def test_checkout_after_close_raises(self, graph):
        pool = StorePool(_loaded_store(graph), _rehydrator(graph), size=2)
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.checkout()

    def test_member_returned_after_close_is_closed(self, graph):
        pool = StorePool(_loaded_store(graph), _rehydrator(graph), size=2)
        store = pool.checkout()
        pool.close()
        pool.checkin(store)  # must not raise; store is retired
        assert pool.stats().created == 0


class TestCloneCapability:
    def test_minidb_has_no_clone_fast_path(self, graph):
        store = _loaded_store(graph)
        with pytest.raises(StoreCloneUnsupportedError):
            store.clone()
        store.close()

    def test_sqlite_in_memory_refuses_to_clone(self, graph):
        store = SQLiteGraphStore()
        store.load_graph(graph)
        with pytest.raises(StoreCloneUnsupportedError):
            store.clone()
        store.close()

    def test_sqlite_file_clone_shares_loaded_data(self, graph, tmp_path):
        path = str(tmp_path / "pool_clone.db")
        primary = SQLiteGraphStore(path=path)
        primary.load_graph(graph)
        clone = primary.clone()
        # The clone reads the already-loaded tables without a bulk load...
        assert clone.visited_count() == 0
        clone.reset_visited()
        clone.insert_visited([{"nid": 0, "d2s": 0.0, "f": 0}])
        # ...and its per-query state is private to its own connection.
        assert clone.visited_count() == 1
        primary.reset_visited()
        assert primary.visited_count() == 0
        clone.close()
        primary.close()

    def test_pool_prefers_clone_for_file_backed_sqlite(self, graph, tmp_path):
        primary = SQLiteGraphStore(path=str(tmp_path / "pool_grow.db"))
        primary.load_graph(graph)
        pool = StorePool(primary, _rehydrator(graph), size=2)
        first = pool.checkout()
        second = pool.checkout()
        stats = pool.stats()
        assert stats.replicas_cloned == 1
        assert stats.replicas_rehydrated == 0
        pool.checkin(first)
        pool.checkin(second)
        pool.close()
