"""Unit tests for the graph model."""

import pytest

from repro.errors import NegativeWeightError, NodeNotFoundError
from repro.graph.model import Edge, Graph


class TestEdge:
    def test_fields(self):
        edge = Edge(1, 2, 3.5)
        assert (edge.fid, edge.tid, edge.cost) == (1, 2, 3.5)

    def test_reversed(self):
        assert Edge(1, 2, 3.0).reversed() == Edge(2, 1, 3.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Edge(1, 2, 3.0).cost = 5.0  # type: ignore[misc]


class TestGraphConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_add_node_idempotent(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(1)
        assert graph.num_nodes == 1

    def test_add_edge_registers_nodes(self):
        graph = Graph()
        graph.add_edge(1, 2, 5.0)
        assert graph.has_node(1) and graph.has_node(2)
        assert graph.num_edges == 1

    def test_undirected_adds_both_directions(self):
        graph = Graph(directed=False)
        graph.add_edge(1, 2, 5.0)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert graph.num_edges == 2

    def test_undirected_self_loop_single(self):
        graph = Graph(directed=False)
        graph.add_edge(3, 3, 1.0)
        assert graph.num_edges == 1

    def test_negative_weight_rejected(self):
        graph = Graph()
        with pytest.raises(NegativeWeightError):
            graph.add_edge(1, 2, -0.5)

    def test_zero_weight_allowed(self):
        graph = Graph()
        graph.add_edge(1, 2, 0.0)
        assert graph.edge_cost(1, 2) == 0.0

    def test_add_edges_bulk(self):
        graph = Graph()
        graph.add_edges([(1, 2, 1.0), (2, 3, 2.0)])
        assert graph.num_edges == 2

    def test_parallel_edges_allowed(self):
        graph = Graph()
        graph.add_edge(1, 2, 5.0)
        graph.add_edge(1, 2, 3.0)
        assert graph.num_edges == 2
        assert graph.edge_cost(1, 2) == 3.0


class TestGraphAccess:
    @pytest.fixture
    def graph(self) -> Graph:
        graph = Graph()
        graph.add_edge(1, 2, 4.0)
        graph.add_edge(1, 3, 2.0)
        graph.add_edge(3, 2, 1.0)
        return graph

    def test_out_edges(self, graph):
        assert sorted(graph.out_edges(1)) == [(2, 4.0), (3, 2.0)]

    def test_in_edges(self, graph):
        assert sorted(graph.in_edges(2)) == [(1, 4.0), (3, 1.0)]

    def test_degrees(self, graph):
        assert graph.out_degree(1) == 2
        assert graph.in_degree(2) == 2
        assert graph.out_degree(2) == 0

    def test_unknown_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.out_edges(99)
        with pytest.raises(NodeNotFoundError):
            graph.in_degree(99)

    def test_edge_cost_missing(self, graph):
        assert graph.edge_cost(2, 1) is None

    def test_min_edge_weight(self, graph):
        assert graph.min_edge_weight() == 1.0

    def test_min_edge_weight_empty_raises(self):
        with pytest.raises(ValueError):
            Graph().min_edge_weight()

    def test_contains(self, graph):
        assert 1 in graph
        assert 99 not in graph

    def test_edges_iteration(self, graph):
        triples = sorted(graph.edge_triples())
        assert triples == [(1, 2, 4.0), (1, 3, 2.0), (3, 2, 1.0)]


class TestGraphTransforms:
    def test_reverse(self):
        graph = Graph()
        graph.add_edge(1, 2, 3.0)
        reversed_graph = graph.reverse()
        assert reversed_graph.has_edge(2, 1)
        assert not reversed_graph.has_edge(1, 2)

    def test_reverse_preserves_nodes(self):
        graph = Graph()
        graph.add_node(7)
        graph.add_edge(1, 2, 3.0)
        assert reversed_nodes(graph.reverse()) == {1, 2, 7}

    def test_subgraph(self):
        graph = Graph()
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(2, 3, 1.0)
        sub = graph.subgraph([1, 2])
        assert sub.has_edge(1, 2)
        assert not sub.has_node(3)

    def test_copy_independent(self):
        graph = Graph()
        graph.add_edge(1, 2, 1.0)
        clone = graph.copy()
        clone.add_edge(2, 3, 1.0)
        assert graph.num_edges == 1
        assert clone.num_edges == 2


def reversed_nodes(graph: Graph) -> set:
    return set(graph.nodes())
