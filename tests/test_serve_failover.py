"""Transport failure modes: a server dying mid-batch, connection refused
at open, a slow shard hitting the client timeout, client-level retries —
and the failover guarantee that replica answers are bit-identical with
zero wrong answers.  Also covers the opt-in shared cross-shard cache."""

import os
import socket

import pytest

from repro.errors import PathNotFoundError, ShardUnavailableError
from repro.graph.generators import power_law_graph
from repro.graph.model import Graph
from repro.serve import ShardClient, ShardServer
from repro.serve.server import _ShardRequestHandler
from repro.service import PathService
from repro.service.planner import QuerySpec
from repro.shard import ShardRouter


def _seed_catalog(catalog_dir, graphs, lthd=None):
    with PathService(catalog_path=catalog_dir) as service:
        for name, graph in graphs.items():
            service.add_graph(name, graph, backend="sqlite",
                              db_path=os.path.join(catalog_dir, f"{name}.db"))
            if lthd is not None:
                service.build_segtable(name, lthd=lthd)


def _shapes(results):
    return [(None if r is None else (r.distance, tuple(r.path)))
            for r in results]


def _free_port():
    """A port that was just bound and released: connecting to it refuses."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _die(handler):
    """Drop the connection without answering (the client sees the server
    die mid-request)."""
    try:
        handler.connection.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    handler.close_connection = True


class _DyingOnExecuteHandler(_ShardRequestHandler):
    """Answers everything except ``/execute`` — planning succeeds, then
    the server 'dies' the moment the batch slice arrives (and stays dead
    for every later execute)."""

    def do_POST(self):  # noqa: N802 - http.server API
        if self.path == "/execute":
            _die(self)
            return
        super().do_POST()


class _SlowExecuteHandler(_ShardRequestHandler):
    """Sleeps past the client timeout on ``/execute`` only."""

    delay = 1.5

    def do_POST(self):  # noqa: N802 - http.server API
        if self.path == "/execute":
            import time
            time.sleep(self.delay)
        try:
            super().do_POST()
        except (ConnectionError, OSError):
            pass  # the client hung up during the sleep; expected


class _FlakyOnceHandler(_ShardRequestHandler):
    """Drops exactly the first ``/shortest_path`` connection, then
    behaves — the client's transport-level retry should absorb it."""

    def do_POST(self):  # noqa: N802 - http.server API
        if (self.path == "/shortest_path"
                and not getattr(self.server, "flaked", False)):
            self.server.flaked = True
            _die(self)
            return
        super().do_POST()


REPLICATED = {"rep": power_law_graph(50, edges_per_node=2, seed=4)}
BATCH = [("rep", 0, t) for t in (5, 10, 15, 20, 25, 30, 35, 40)]


@pytest.fixture
def replicated(tmp_path):
    """Two catalogs hosting the identical graph (same fingerprint): the
    first is served remotely as the owner, the second is a local
    replica."""
    cat_primary = str(tmp_path / "primary")
    cat_replica = str(tmp_path / "replica")
    _seed_catalog(cat_primary, REPLICATED, lthd=3.0)
    _seed_catalog(cat_replica, REPLICATED, lthd=3.0)
    return cat_primary, cat_replica


def _expected(cat_replica):
    with PathService.open(cat_replica) as service:
        return _shapes(service.shortest_path_many(BATCH).results)


class TestConnectionRefusedAtOpen:
    def test_router_open_fails_immediately(self):
        with pytest.raises(ShardUnavailableError, match="unreachable"):
            ShardRouter.open([f"http://127.0.0.1:{_free_port()}"])

    def test_client_health_raises_without_retry_delay(self):
        client = ShardClient(f"http://127.0.0.1:{_free_port()}", retries=5)
        with pytest.raises(ShardUnavailableError):
            client.health()  # health never retries


class TestServerDiesMidBatch:
    def test_batch_completes_via_replica_bit_identical(self, replicated):
        cat_primary, cat_replica = replicated
        expected = _expected(cat_replica)
        service = PathService.open(cat_primary, shard_id="primary")
        with ShardServer(service, port=0, own_service=True,
                         handler_class=_DyingOnExecuteHandler) as server:
            remote_name = f"{server.host}:{server.port}"
            with ShardRouter.open([server.url, cat_replica],
                                  remote_retries=0) as router:
                assert router.owner("rep") == remote_name
                scatter = router.shortest_path_many(BATCH, concurrency=2)
                # Zero wrong answers: every result matches the replica's
                # own (= the monolith's) answer, nothing dropped.
                assert _shapes(scatter.results) == expected
                assert all(result is not None for result in scatter.results)
                # The detour is visible in the batch accounting.
                assert scatter.stats.failovers == len(BATCH)
                assert scatter.stats.per_shard_errors[remote_name] >= 1
                assert set(scatter.shard_of) == {"replica"}
                # ... and in the router's lifetime health view.
                health = router.shard_health()
                assert health[remote_name]["errors"] >= 1
                assert health[remote_name]["down"] is True
                assert health["replica"]["errors"] == 0

    def test_server_killed_between_batches_fails_over(self, replicated):
        cat_primary, cat_replica = replicated
        expected = _expected(cat_replica)
        service = PathService.open(cat_primary, shard_id="primary")
        server = ShardServer(service, port=0, own_service=True).start()
        remote_name = f"{server.host}:{server.port}"
        with ShardRouter.open([server.url, cat_replica],
                              remote_retries=0) as router:
            first = router.shortest_path_many(BATCH)
            assert _shapes(first.results) == expected
            assert set(first.shard_of) == {remote_name}
            server.close()  # the owner goes away mid-workload
            second = router.shortest_path_many(BATCH)
            assert _shapes(second.results) == expected
            assert set(second.shard_of) == {"replica"}
            assert second.stats.per_shard_errors[remote_name] >= 1
            report = router.check_health()
            assert report[remote_name]["status"] == "down"
            assert report["replica"]["status"] == "ok"

    def test_single_query_fails_over_bit_identical(self, replicated):
        cat_primary, cat_replica = replicated
        service = PathService.open(cat_primary, shard_id="primary")
        server = ShardServer(service, port=0, own_service=True).start()
        remote_name = f"{server.host}:{server.port}"
        with ShardRouter.open([server.url, cat_replica],
                              remote_retries=0) as router:
            before = router.shortest_path(0, 20, graph="rep")
            server.close()
            after = router.shortest_path(0, 20, graph="rep", use_cache=False)
            assert after.distance == before.distance
            assert list(after.path) == list(before.path)
            assert router.shard_health()[remote_name]["errors"] >= 1

    def test_no_replica_left_raises_shard_unavailable(self, tmp_path):
        catalog = str(tmp_path / "only")
        _seed_catalog(catalog, REPLICATED)
        service = PathService.open(catalog, shard_id="only")
        server = ShardServer(service, port=0, own_service=True).start()
        with ShardRouter.open([server.url], remote_retries=0) as router:
            server.close()
            with pytest.raises(ShardUnavailableError):
                router.shortest_path(0, 20, graph="rep")
            with pytest.raises(ShardUnavailableError):
                router.shortest_path_many(BATCH)


class TestSlowShard:
    def test_client_timeout_triggers_failover(self, replicated):
        cat_primary, cat_replica = replicated
        expected = _expected(cat_replica)
        service = PathService.open(cat_primary, shard_id="primary")
        with ShardServer(service, port=0, own_service=True,
                         handler_class=_SlowExecuteHandler) as server:
            remote_name = f"{server.host}:{server.port}"
            with ShardRouter.open([server.url, cat_replica],
                                  remote_timeout=0.25,
                                  remote_retries=0) as router:
                scatter = router.shortest_path_many(BATCH)
                assert _shapes(scatter.results) == expected
                assert set(scatter.shard_of) == {"replica"}
                assert scatter.stats.per_shard_errors[remote_name] >= 1


class TestClientRetry:
    def test_transient_drop_is_absorbed_by_retry(self, tmp_path):
        catalog = str(tmp_path / "flaky")
        _seed_catalog(catalog, REPLICATED)
        service = PathService.open(catalog, shard_id="flaky")
        with ShardServer(service, port=0, own_service=True,
                         handler_class=_FlakyOnceHandler) as server:
            client = ShardClient(server.url, retries=2)
            result = client.shortest_path(
                QuerySpec(source=0, target=20, graph="rep"))
            assert result.distance > 0
            local = service.shortest_path(0, 20, graph="rep",
                                          use_cache=False)
            assert result.distance == local.distance

    def test_zero_retries_surfaces_the_drop(self, tmp_path):
        catalog = str(tmp_path / "flaky0")
        _seed_catalog(catalog, REPLICATED)
        service = PathService.open(catalog, shard_id="flaky0")
        with ShardServer(service, port=0, own_service=True,
                         handler_class=_FlakyOnceHandler) as server:
            client = ShardClient(server.url, retries=0)
            with pytest.raises(ShardUnavailableError):
                client.shortest_path(
                    QuerySpec(source=0, target=20, graph="rep"))


class TestSharedCrossShardCache:
    @pytest.fixture
    def replica_pair(self, tmp_path):
        """Two local catalogs hosting the same graph (plus a graph with a
        disconnected pair, for negative caching)."""
        disconnected = Graph()
        disconnected.add_edge(1, 2, 1.0)
        disconnected.add_edge(3, 4, 1.0)
        graphs = dict(REPLICATED)
        graphs["split"] = disconnected
        cat_a = str(tmp_path / "a")
        cat_b = str(tmp_path / "b")
        _seed_catalog(cat_a, graphs)
        _seed_catalog(cat_b, graphs)
        return cat_a, cat_b

    def test_disabled_by_default(self, replica_pair):
        cat_a, cat_b = replica_pair
        with ShardRouter.open([cat_a, cat_b]) as router:
            assert router.shared_cache_info() is None
            router.shortest_path(0, 20, graph="rep")
            assert router.shared_cache_info() is None

    def test_repeat_query_hits_shared_cache(self, replica_pair):
        cat_a, cat_b = replica_pair
        with ShardRouter.open([cat_a, cat_b],
                              shared_cache_size=32) as router:
            first = router.shortest_path(0, 20, graph="rep")
            info = router.shared_cache_info()
            assert info.size == 1 and info.hits == 0
            second = router.shortest_path(0, 20, graph="rep")
            assert router.shared_cache_info().hits == 1
            assert second.distance == first.distance
            assert list(second.path) == list(first.path)
            # The cache hands out copies: mutating one answer must not
            # poison the cached entry.
            second.path.append(-1)
            third = router.shortest_path(0, 20, graph="rep")
            assert list(third.path) == list(first.path)

    def test_batch_counts_shared_cache_hits(self, replica_pair):
        cat_a, cat_b = replica_pair
        batch = [("rep", 0, t) for t in (5, 10, 15)]
        with ShardRouter.open([cat_a, cat_b],
                              shared_cache_size=32) as router:
            first = router.shortest_path_many(batch)
            assert first.stats.shared_cache_hits == 0
            second = router.shortest_path_many(batch)
            assert second.stats.shared_cache_hits == len(batch)
            assert second.from_cache == [True] * len(batch)
            assert _shapes(second.results) == _shapes(first.results)
            # No shard ran anything the second time.
            assert second.stats.executed == 0

    def test_negative_verdicts_are_shared(self, replica_pair):
        cat_a, cat_b = replica_pair
        with ShardRouter.open([cat_a, cat_b],
                              shared_cache_size=32) as router:
            with pytest.raises(PathNotFoundError):
                router.shortest_path(1, 4, graph="split")
            with pytest.raises(PathNotFoundError):
                router.shortest_path(1, 4, graph="split")
            assert router.shared_cache_info().negative_hits == 1
            # Batches consult the same negative entries.
            scatter = router.shortest_path_many([("split", 1, 4)])
            assert scatter.results == [None]
            assert scatter.from_cache == [True]
            assert scatter.stats.shared_cache_hits == 1

    def test_capped_queries_bypass_the_shared_cache(self, replica_pair):
        cat_a, cat_b = replica_pair
        with ShardRouter.open([cat_a, cat_b],
                              shared_cache_size=32) as router:
            router.shortest_path(0, 20, graph="rep", max_iterations=64)
            assert router.shared_cache_info().size == 0

    def test_cached_answer_survives_owner_death(self, replicated):
        """Cross-shard sharing, the acceptance shape: an answer cached
        from the (remote) owner keeps serving after that owner dies,
        without even counting a failover."""
        cat_primary, cat_replica = replicated
        service = PathService.open(cat_primary, shard_id="primary")
        server = ShardServer(service, port=0, own_service=True).start()
        remote_name = f"{server.host}:{server.port}"
        with ShardRouter.open([server.url, cat_replica],
                              remote_retries=0,
                              shared_cache_size=32) as router:
            before = router.shortest_path(0, 20, graph="rep")
            server.close()
            after = router.shortest_path(0, 20, graph="rep")
            assert after.distance == before.distance
            assert list(after.path) == list(before.path)
            # Served from the shared cache: the dead owner was never
            # touched, so its health record stays clean.
            assert router.shard_health()[remote_name]["errors"] == 0
