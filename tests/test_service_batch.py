"""Tests for shortest_path_many: grouping, caching, stats, and the
100+-mixed-query acceptance workload with a measured cache speedup."""

import time

import warnings

import pytest

from repro.core.api import shortest_path as one_shot_shortest_path
from repro.errors import InvalidQueryError, PathNotFoundError, UnknownGraphError
from repro.graph.generators import grid_graph, path_graph, power_law_graph
from repro.memory.dijkstra import dijkstra_shortest_path
from repro.service import BatchResult, PathService, QuerySpec


class TestBatchBasics:
    def test_empty_batch(self):
        with PathService() as service:
            service.add_graph("default", path_graph(4))
            batch = service.shortest_path_many([])
            assert len(batch) == 0
            assert batch.stats.total == 0
            assert batch.stats.cache_hits == 0
            assert batch.distances() == []

    def test_results_aligned_with_input_order(self):
        graph = path_graph(6, weight_range=(2, 2))
        with PathService() as service:
            service.add_graph("default", graph)
            batch = service.shortest_path_many([(0, 5), (0, 3), (1, 2)])
            assert batch.distances() == [10, 6, 2]
            assert [spec.target for spec in batch.specs] == [5, 3, 2]

    def test_duplicate_pairs_hit_cache(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            batch = service.shortest_path_many([(0, 24)] * 5)
            assert batch.stats.cache_hits == 4
            assert batch.stats.cache_misses == 1
            assert batch.stats.executed == 1
            assert len(set(batch.distances())) == 1

    def test_unreachable_pairs_counted(self):
        graph = path_graph(3)
        graph.add_node(9)
        with PathService() as service:
            service.add_graph("default", graph)
            batch = service.shortest_path_many([(0, 2), (0, 9)])
            assert batch.results[0] is not None
            assert batch.results[1] is None
            assert batch.stats.not_found == 1
            assert batch.distances()[1] is None
            assert len(batch.found()) == 1

    def test_unreachable_can_raise(self):
        graph = path_graph(3)
        graph.add_node(9)
        with PathService() as service:
            service.add_graph("default", graph)
            with pytest.raises(PathNotFoundError):
                service.shortest_path_many([(0, 9)], raise_on_unreachable=True)

    def test_mixed_methods_per_query(self, small_grid_graph):
        expected = dijkstra_shortest_path(small_grid_graph, 0, 24).distance
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            batch = service.shortest_path_many([
                QuerySpec(source=0, target=24, method="BDJ"),
                QuerySpec(source=0, target=24, method="MDJ"),
                QuerySpec(source=0, target=24, method="auto"),
                ("default", 0, 24, "BSDJ"),
            ])
            assert all(abs(d - expected) < 1e-6 for d in batch.distances())
            assert batch.stats.per_method["BDJ"] == 1
            assert batch.stats.per_method["MDJ"] == 1
            assert batch.stats.per_method["BSDJ"] == 1

    def test_multi_graph_batch_grouping(self):
        with PathService() as service:
            service.add_graph("a", path_graph(5, weight_range=(1, 1)))
            service.add_graph("b", path_graph(5, weight_range=(3, 3)))
            batch = service.shortest_path_many(
                [("a", 0, 4), ("b", 0, 4), ("a", 1, 3), ("b", 1, 3)])
            assert batch.distances() == [4, 12, 2, 6]
            assert batch.stats.per_graph == {"a": 2, "b": 2}

    def test_dict_query_form(self):
        with PathService() as service:
            service.add_graph("default", path_graph(4, weight_range=(1, 1)))
            batch = service.shortest_path_many(
                [{"source": 0, "target": 3, "method": "BDJ"}])
            assert batch.distances() == [3]

    def test_malformed_query_rejected_before_execution(self):
        with PathService() as service:
            service.add_graph("default", path_graph(4))
            with pytest.raises(InvalidQueryError):
                service.shortest_path_many([(0, 1, 2, 3, 4)])

    def test_bad_graph_fails_whole_batch_upfront(self):
        with PathService() as service:
            service.add_graph("default", path_graph(4))
            with pytest.raises(UnknownGraphError):
                service.shortest_path_many([(0, 1), ("missing", 0, 1)])

    def test_batch_total_time_recorded(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            batch = service.shortest_path_many([(0, 24)])
            assert batch.stats.total_time > 0


class TestBatchAcceptance:
    """The PR acceptance workload: >= 100 mixed queries, correct distances,
    and a measured cache-hit speedup over sequential one-shot calls."""

    def _build_workload(self, graph, repeats=4):
        nodes = sorted(graph.nodes())
        pairs = []
        rng_pairs = [(nodes[i], nodes[-1 - i]) for i in range(15)]
        methods = ["auto", "BDJ", "BSDJ", "MDJ", "MBDJ"]
        for index, (source, target) in enumerate(rng_pairs):
            method = methods[index % len(methods)]
            pairs.append(QuerySpec(source=source, target=target,
                                   method=method))
        return pairs * repeats  # 15 unique pairs x 4 = 60... see caller

    def test_100_mixed_queries_correct_with_cache_speedup(self):
        graph = power_law_graph(150, edges_per_node=2, seed=9)
        specs = self._build_workload(graph, repeats=7)  # 105 queries
        assert len(specs) >= 100

        with PathService() as service:
            service.add_graph("default", graph)
            start = time.perf_counter()
            batch = service.shortest_path_many(specs)
            batch_elapsed = time.perf_counter() - start

        assert batch.stats.total == len(specs)
        # Repeats are served from the cache: at most one execution per
        # distinct (source, target, resolved-method) triple.
        assert batch.stats.cache_hits >= len(specs) - 2 * 15 - 1
        assert batch.stats.executed < len(specs)

        # Every answered query matches the in-memory reference; unreachable
        # pairs are allowed (power-law graphs are not strongly connected)
        # but must be consistently unreachable.
        checked = 0
        for spec, result in zip(batch.specs, batch.results):
            try:
                expected = dijkstra_shortest_path(graph, spec.source,
                                                  spec.target).distance
            except PathNotFoundError:
                assert result is None
                continue
            assert result is not None
            assert abs(result.distance - expected) < 1e-6
            checked += 1
        assert checked >= 50

        # Sequential one-shot calls reload the graph every time; the batch
        # must beat them on the same repeated workload.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            start = time.perf_counter()
            for spec in specs[:20]:  # 20 of 105 is already conclusive
                try:
                    one_shot_shortest_path(graph, spec.source, spec.target,
                                           method=spec.method
                                           if spec.method != "auto" else "BSDJ")
                except PathNotFoundError:
                    pass
            sequential_elapsed = (time.perf_counter() - start) * (len(specs) / 20)
        assert batch_elapsed < sequential_elapsed


class TestBatchResultContainer:
    def test_iteration_and_indexing(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            batch = service.shortest_path_many([(0, 24), (0, 12)])
            assert isinstance(batch, BatchResult)
            assert len(list(batch)) == 2
            assert batch[0].distance == batch.distances()[0]

    def test_stats_as_dict_roundtrip(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            batch = service.shortest_path_many([(0, 24), (0, 24)])
            summary = batch.stats.as_dict()
            assert summary["total"] == 2
            assert summary["cache_hits"] == 1
            assert 0 < summary["hit_rate"] <= 1


class TestBatchStatsAccounting:
    def test_unreachable_counts_as_executed(self):
        graph = path_graph(3)
        graph.add_node(9)
        with PathService() as service:
            service.add_graph("default", graph)
            batch = service.shortest_path_many([(0, 9), (0, 9)])
            # The first unreachable query ran a full search; the repeat was
            # answered from the negative result cache without executing.
            assert batch.stats.executed == 1
            assert batch.stats.not_found == 2
            assert batch.stats.negative_hits == 1
            assert batch.stats.cache_misses == 0

    def test_unreachable_reruns_without_negative_cache(self):
        graph = path_graph(3)
        graph.add_node(9)
        with PathService(negative_cache_size=0) as service:
            service.add_graph("default", graph)
            batch = service.shortest_path_many([(0, 9), (0, 9)])
            # Negative caching disabled: each repeat re-runs the search.
            assert batch.stats.executed == 2
            assert batch.stats.not_found == 2
            assert batch.stats.negative_hits == 0

    def test_dict_query_bad_fields_raise_invalid_query(self):
        with PathService() as service:
            service.add_graph("default", path_graph(4))
            with pytest.raises(InvalidQueryError, match="source"):
                service.shortest_path_many([{"src": 0, "dst": 3}])

    def test_two_tuple_with_string_rejected(self):
        with PathService() as service:
            service.add_graph("g", path_graph(4))
            with pytest.raises(InvalidQueryError, match="graph, source, target"):
                service.shortest_path_many([("g", 1)])


class TestTupleFormGuards:
    def test_three_tuple_without_graph_name_rejected(self):
        # (0, 15, "BDJ") is NOT (source, target, method); require the
        # documented (graph, source, target[, method]) form.
        with PathService() as service:
            service.add_graph("default", path_graph(4))
            with pytest.raises(InvalidQueryError, match="graph name"):
                service.shortest_path_many([(0, 3, "BDJ")])
