"""Backend conformance suite.

One parametrized capability/correctness suite that any backend registered
through :func:`repro.core.store.registry.register_backend` must pass:
graph loading, bit-identical FEM query answers against the SQLite
reference, pool clone/checkout behavior (with ``max_connections``
clamping), the persistence round-trip, and fingerprint stability.

The hermetic matrix covers ``minidb``, ``sqlite``, and the generic DB-API
store over the stdlib fallback wire server.  Setting ``REPRO_TEST_DSN``
to a PostgreSQL DSN (the CI ``postgres`` job does) adds a live-server
leg running the exact same assertions.
"""

from __future__ import annotations

import os
import uuid
from typing import Callable, List, Optional, Tuple

import pytest

from repro.core.directions import FORWARD_DIRECTION
from repro.core.stats import QueryStats
from repro.core.store.base import GraphStore
from repro.core.store.registry import available_backends, create_store
from repro.graph.fingerprint import fingerprint_graph
from repro.graph.model import Graph
from repro.service import PathService

LIVE_DSN = os.environ.get("REPRO_TEST_DSN", "").strip()

RELATIONAL = ("DJ", "BDJ", "BSDJ", "BSEG")

BACKENDS = [
    pytest.param("minidb", id="minidb"),
    pytest.param("sqlite", id="sqlite"),
    pytest.param("dbapi", id="dbapi-fallback"),
    pytest.param(
        "dbapi-live",
        id="postgres-live",
        marks=pytest.mark.skipif(
            not LIVE_DSN, reason="REPRO_TEST_DSN not set"),
    ),
]


def _with_prefix(dsn: str) -> str:
    """Append a unique ``table_prefix`` so suite runs sharing one server
    database (the session fallback server, or a CI PostgreSQL service)
    never collide."""
    sep = "&" if "?" in dsn else "?"
    return f"{dsn}{sep}table_prefix=t{uuid.uuid4().hex[:10]}_"


@pytest.fixture
def conformance_backend(request: pytest.FixtureRequest
                        ) -> Tuple[str, Callable[[], Optional[str]]]:
    """Resolve a matrix param to ``(backend_name, path_factory)``."""
    param = request.param
    if param == "dbapi":
        return "dbapi", request.getfixturevalue("fresh_dsn")
    if param == "dbapi-live":
        return "dbapi", lambda: _with_prefix(LIVE_DSN)
    return param, lambda: None


def _parametrized(func):
    return pytest.mark.parametrize("conformance_backend", BACKENDS,
                                   indirect=True)(func)


@pytest.fixture
def make_store(conformance_backend):
    """Store factory for the backend under test; destroys every store it
    handed out (dropping namespaced server tables) at teardown."""
    backend, make_path = conformance_backend
    created: List[GraphStore] = []

    def factory(path: Optional[str] = None, **kwargs: object) -> GraphStore:
        store = create_store(backend, path=path or make_path(), **kwargs)
        created.append(store)
        return store

    yield factory
    for store in created:
        try:
            store.destroy()
        except Exception:
            pass


def conformance_graph() -> Graph:
    graph = Graph()
    edges = [
        (1, 2, 4.0), (1, 3, 1.0), (3, 2, 1.0), (2, 4, 2.0),
        (3, 4, 6.0), (4, 5, 1.0), (2, 5, 5.0), (5, 6, 2.0),
        (3, 6, 9.0), (6, 1, 3.0), (4, 7, 4.0), (7, 6, 1.0),
    ]
    for fid, tid, cost in edges:
        graph.add_edge(fid, tid, cost)
    return graph


QUERY_PAIRS = [(1, 6), (1, 7), (3, 5), (6, 4), (2, 6)]


def _reference_answers(kind: str = "path", max_hops: Optional[int] = None):
    """The SQLite backend's answers — the conformance reference."""
    service = PathService(default_backend="sqlite")
    try:
        service.add_graph("g", conformance_graph(), persist=False)
        answers = {}
        for source, target in QUERY_PAIRS:
            result = service.shortest_path(source, target, graph="g",
                                           method="DJ", kind=kind,
                                           max_hops=max_hops)
            answers[(source, target)] = (result.distance, tuple(result.path))
        return answers
    finally:
        service.close()


def _service_for(backend: str, make_path, concurrency: int = 1,
                 with_segtable: bool = False) -> PathService:
    service = PathService(default_backend=backend)
    service.add_graph("g", conformance_graph(), backend=backend,
                      db_path=make_path(), concurrency=concurrency,
                      persist=False)
    if with_segtable:
        service.build_segtable("g", lthd=3.0)
    return service


class TestCapabilitySurface:
    def test_every_matrix_backend_is_registered(self):
        names = available_backends()
        for required in ("minidb", "sqlite", "dbapi"):
            assert required in names

    @_parametrized
    def test_capability_contract(self, conformance_backend, make_store):
        backend, _ = conformance_backend
        store = make_store()
        assert store.backend_name == backend
        assert isinstance(type(store).supports_concurrent_readers, bool)
        limit = store.max_connections()
        assert limit is None or (isinstance(limit, int) and limit >= 1)
        assert isinstance(store.supports_clone(), bool)
        assert isinstance(store.supports_persistence(), bool)
        # calibration_path must isolate probes: either in-memory (None) or
        # a path distinct from the store's own namespace, fresh every call.
        first, second = store.calibration_path(), store.calibration_path()
        if first is not None:
            assert first != store.path
            assert first != second

    @_parametrized
    def test_store_level_fem_statements(self, make_store):
        store = make_store()
        store.load_graph(conformance_graph())
        store.begin_query(QueryStats(), "nsql")
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 0.0, "p2s": 1, "f": 0}])
        assert store.visited_count() == 1
        assert store.top1_min_unfinalized(FORWARD_DIRECTION) == 1
        affected = store.expand(FORWARD_DIRECTION, mid=1)
        assert affected == 2  # nodes 2 and 3 discovered
        rows = {row["nid"]: row for row in store.visited_rows()}
        assert rows[2]["d2s"] == 4.0
        assert rows[3]["d2s"] == 1.0
        store.finalize_node(1, FORWARD_DIRECTION)
        assert store.is_finalized(1, FORWARD_DIRECTION)


class TestQueryParity:
    @_parametrized
    @pytest.mark.parametrize("method", RELATIONAL)
    @pytest.mark.parametrize("sql_style", ["nsql", "tsql"])
    def test_methods_bit_identical_to_reference(self, conformance_backend,
                                                method, sql_style):
        backend, make_path = conformance_backend
        reference = _reference_answers()
        service = _service_for(backend, make_path,
                               with_segtable=(method == "BSEG"))
        try:
            for (source, target), expected in reference.items():
                result = service.shortest_path(source, target, graph="g",
                                               method=method,
                                               sql_style=sql_style,
                                               use_cache=False)
                assert (result.distance, tuple(result.path)) == expected
        finally:
            service.close()

    @_parametrized
    @pytest.mark.parametrize("kind,max_hops", [("bounded_hop", 3),
                                               ("reachability", None)])
    def test_query_kinds_bit_identical(self, conformance_backend, kind,
                                       max_hops):
        backend, make_path = conformance_backend
        reference = _reference_answers(kind=kind, max_hops=max_hops)
        service = _service_for(backend, make_path)
        try:
            for (source, target), expected in reference.items():
                result = service.shortest_path(source, target, graph="g",
                                               method="DJ", kind=kind,
                                               max_hops=max_hops,
                                               use_cache=False)
                assert (result.distance, tuple(result.path)) == expected
        finally:
            service.close()


class TestPooling:
    @_parametrized
    def test_parallel_batch_through_pool(self, conformance_backend):
        backend, make_path = conformance_backend
        reference = _reference_answers()
        service = _service_for(backend, make_path, concurrency=3)
        try:
            batch = service.shortest_path_many(
                [{"source": s, "target": t} for s, t in QUERY_PAIRS],
                graph="g", method="DJ", concurrency=3)
            for (source, target), result in zip(QUERY_PAIRS, batch.results):
                assert result is not None
                expected = reference[(source, target)]
                assert (result.distance, tuple(result.path)) == expected
            stats = service.pool_stats("g")
            store = service._host("g").store
            if not type(store).supports_concurrent_readers:
                assert stats.capacity == 1
            else:
                assert stats.capacity >= 1
                limit = store.max_connections()
                if limit is not None:
                    assert stats.capacity <= limit
        finally:
            service.close()

    @_parametrized
    def test_pool_capacity_clamped_to_max_connections(self,
                                                      conformance_backend):
        backend, make_path = conformance_backend
        service = PathService(default_backend=backend)
        try:
            service.add_graph("g", conformance_graph(), backend=backend,
                              db_path=make_path(), concurrency=64,
                              persist=False)
            stats = service.pool_stats("g")
            store = service._host("g").store
            limit = store.max_connections()
            if not type(store).supports_concurrent_readers:
                assert stats.capacity == 1
            elif limit is not None:
                assert stats.capacity <= limit
            else:
                assert stats.capacity == 64
        finally:
            service.close()


class TestPersistence:
    @_parametrized
    def test_fingerprint_stable_and_matches_graph(self, conformance_backend,
                                                  make_store):
        graph = conformance_graph()
        store = make_store()
        store.load_graph(graph)
        if not store.supports_persistence():
            pytest.skip("backend instance does not persist graph data")
        expected = fingerprint_graph(graph)
        assert store.content_fingerprint() == expected
        # A second store loaded with the same content agrees.
        twin = make_store()
        twin.load_graph(conformance_graph())
        assert twin.content_fingerprint() == expected

    @_parametrized
    def test_export_graph_round_trip(self, conformance_backend, make_store):
        graph = conformance_graph()
        store = make_store()
        store.load_graph(graph)
        if not store.supports_persistence():
            pytest.skip("backend instance does not persist graph data")
        exported = store.export_graph()
        assert fingerprint_graph(exported) == fingerprint_graph(graph)

    @_parametrized
    def test_dsn_adoption_warm_start(self, conformance_backend):
        """Populate a server database, reopen it with ``PathService.open``:
        the SegTable is adopted, never rebuilt, and answers still match."""
        backend, make_path = conformance_backend
        path = make_path()
        if path is None or "://" not in path:
            pytest.skip("DSN adoption applies to client-server backends")
        reference = _reference_answers()

        writer = PathService(default_backend=backend)
        writer.add_graph("default", conformance_graph(), backend=backend,
                         db_path=path, persist=False)
        writer.build_segtable("default", lthd=3.0)
        assert writer.segtable_builds == 1
        writer.close()

        service = PathService.open(backend=backend, dsn=path)
        try:
            assert service.segtable_builds == 0
            for (source, target), expected in reference.items():
                result = service.shortest_path(source, target, method="BSEG",
                                               use_cache=False)
                assert (result.distance, tuple(result.path)) == expected
            assert service.segtable_builds == 0
        finally:
            service.close()
        # Drop the namespaced server tables behind this test.
        cleanup = create_store(backend, path=path)
        cleanup.destroy()


class TestSelectedBackend:
    def test_env_selected_backend_answers_queries(self, test_backend):
        """The ``REPRO_TEST_BACKEND`` matrix axis: whichever backend the
        environment selects must pass a service-level smoke check."""
        reference = _reference_answers()
        service = PathService(default_backend=test_backend.name)
        try:
            service.add_graph("g", conformance_graph(),
                              backend=test_backend.name,
                              db_path=test_backend.make_path(),
                              persist=False)
            for (source, target), expected in reference.items():
                result = service.shortest_path(source, target, graph="g",
                                               use_cache=False)
                assert (result.distance, tuple(result.path)) == expected
        finally:
            service.close()
