"""Property-based end-to-end tests: every relational method agrees with the
in-memory Dijkstra oracle on randomly generated graphs and queries."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import RelationalPathFinder
from repro.errors import PathNotFoundError
from repro.graph.model import Graph
from repro.memory.bidirectional import bidirectional_dijkstra
from repro.memory.dijkstra import dijkstra_shortest_path


@st.composite
def graphs_and_queries(draw):
    """A small random weighted digraph plus a (source, target) pair."""
    num_nodes = draw(st.integers(min_value=2, max_value=18))
    num_edges = draw(st.integers(min_value=1, max_value=60))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1),
                st.integers(0, num_nodes - 1),
                st.integers(1, 20),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    graph = Graph()
    for nid in range(num_nodes):
        graph.add_node(nid)
    for fid, tid, cost in edges:
        if fid != tid:
            graph.add_edge(fid, tid, float(cost))
    source = draw(st.integers(0, num_nodes - 1))
    target = draw(st.integers(0, num_nodes - 1))
    return graph, source, target


def oracle_distance(graph, source, target):
    try:
        return dijkstra_shortest_path(graph, source, target).distance
    except PathNotFoundError:
        return None


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=graphs_and_queries())
def test_property_relational_methods_match_oracle(case):
    """DJ / BDJ / BSDJ / BBFS / BSEG all agree with the oracle, including on
    unreachable pairs (where they must raise PathNotFoundError)."""
    graph, source, target = case
    expected = oracle_distance(graph, source, target)
    finder = RelationalPathFinder(graph, buffer_capacity=64)
    finder.build_segtable(lthd=8)
    try:
        for method in ("DJ", "BDJ", "BSDJ", "BBFS", "BSEG"):
            if expected is None:
                with pytest.raises(PathNotFoundError):
                    finder.shortest_path(source, target, method=method)
            else:
                result = finder.shortest_path(source, target, method=method)
                assert result.distance == pytest.approx(expected)
                result.validate_against(graph)
    finally:
        finder.close()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=graphs_and_queries())
def test_property_sqlite_backend_matches_oracle(case):
    """The SQLite store gives the same answers as the mini engine."""
    graph, source, target = case
    expected = oracle_distance(graph, source, target)
    finder = RelationalPathFinder(graph, backend="sqlite")
    finder.build_segtable(lthd=8)
    try:
        for method in ("BSDJ", "BSEG"):
            if expected is None:
                with pytest.raises(PathNotFoundError):
                    finder.shortest_path(source, target, method=method)
            else:
                result = finder.shortest_path(source, target, method=method)
                assert result.distance == pytest.approx(expected)
    finally:
        finder.close()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=graphs_and_queries())
def test_property_memory_bidirectional_matches_oracle(case):
    """MBDJ agrees with MDJ on every random graph."""
    graph, source, target = case
    expected = oracle_distance(graph, source, target)
    if expected is None:
        with pytest.raises(PathNotFoundError):
            bidirectional_dijkstra(graph, source, target)
    else:
        assert bidirectional_dijkstra(graph, source, target).distance == pytest.approx(expected)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=graphs_and_queries(), sql_style=st.sampled_from(["nsql", "tsql"]))
def test_property_sql_styles_equivalent(case, sql_style):
    """NSQL and TSQL evaluation styles always produce the oracle distance."""
    graph, source, target = case
    expected = oracle_distance(graph, source, target)
    if expected is None:
        return
    finder = RelationalPathFinder(graph, buffer_capacity=64)
    try:
        result = finder.shortest_path(source, target, method="BSDJ",
                                      sql_style=sql_style)
        assert result.distance == pytest.approx(expected)
    finally:
        finder.close()
