"""Unit and property-based tests for the slotted page."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PageError, PageFullError
from repro.storage.page import HEADER_SIZE, RecordId, SlottedPage


class TestSlottedPageBasics:
    def test_new_page_is_empty(self):
        page = SlottedPage(0, page_size=512)
        assert page.num_records == 0
        assert page.num_slots == 0
        assert page.free_space() == 512 - HEADER_SIZE

    def test_insert_and_read(self):
        page = SlottedPage(0, page_size=512)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"
        assert page.num_records == 1

    def test_multiple_inserts_have_distinct_slots(self):
        page = SlottedPage(0, page_size=512)
        slots = [page.insert(f"rec{i}".encode()) for i in range(5)]
        assert len(set(slots)) == 5
        for index, slot in enumerate(slots):
            assert page.read(slot) == f"rec{index}".encode()

    def test_empty_record_rejected(self):
        page = SlottedPage(0, page_size=512)
        with pytest.raises(PageError):
            page.insert(b"")

    def test_oversized_record_rejected(self):
        page = SlottedPage(0, page_size=256)
        with pytest.raises(PageError):
            page.insert(b"x" * 10_000)

    def test_page_full(self):
        page = SlottedPage(0, page_size=128)
        with pytest.raises(PageFullError):
            for _ in range(100):
                page.insert(b"x" * 16)

    def test_delete_and_reuse_slot(self):
        page = SlottedPage(0, page_size=512)
        slot = page.insert(b"first")
        page.delete(slot)
        assert page.num_records == 0
        new_slot = page.insert(b"second")
        assert new_slot == slot
        assert page.read(new_slot) == b"second"

    def test_read_deleted_slot_raises(self):
        page = SlottedPage(0, page_size=512)
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.read(slot)

    def test_double_delete_raises(self):
        page = SlottedPage(0, page_size=512)
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.delete(slot)

    def test_out_of_range_slot(self):
        page = SlottedPage(0, page_size=512)
        with pytest.raises(PageError):
            page.read(3)


class TestSlottedPageUpdate:
    def test_update_same_size(self):
        page = SlottedPage(0, page_size=512)
        slot = page.insert(b"aaaa")
        assert page.update(slot, b"bbbb")
        assert page.read(slot) == b"bbbb"

    def test_update_smaller(self):
        page = SlottedPage(0, page_size=512)
        slot = page.insert(b"aaaaaaaa")
        assert page.update(slot, b"bb")
        assert page.read(slot) == b"bb"

    def test_update_larger_with_space(self):
        page = SlottedPage(0, page_size=512)
        slot = page.insert(b"aa")
        assert page.update(slot, b"b" * 64)
        assert page.read(slot) == b"b" * 64

    def test_update_larger_without_space(self):
        page = SlottedPage(0, page_size=96)
        slot = page.insert(b"a" * 40)
        assert page.update(slot, b"b" * 4000) is False
        assert page.read(slot) == b"a" * 40

    def test_update_preserves_other_records(self):
        page = SlottedPage(0, page_size=512)
        first = page.insert(b"first")
        second = page.insert(b"second")
        page.update(first, b"FIRST!")
        assert page.read(second) == b"second"


class TestSlottedPagePersistence:
    def test_round_trip_through_bytes(self):
        page = SlottedPage(7, page_size=512)
        page.insert(b"alpha")
        page.insert(b"beta")
        restored = SlottedPage(7, bytearray(page.to_bytes()))
        assert dict(restored.records()) == dict(page.records())

    def test_compact_reclaims_space(self):
        page = SlottedPage(0, page_size=256)
        slots = [page.insert(b"x" * 30) for _ in range(5)]
        for slot in slots[:4]:
            page.delete(slot)
        free_before = page.free_space()
        page.compact()
        assert page.free_space() > free_before
        assert page.read(slots[4]) == b"x" * 30


class TestRecordId:
    def test_ordering(self):
        assert RecordId(0, 1) < RecordId(0, 2) < RecordId(1, 0)

    def test_equality(self):
        assert RecordId(3, 4) == RecordId(3, 4)


@settings(max_examples=50, deadline=None)
@given(records=st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=30))
def test_property_insert_then_read_back(records):
    """Whatever fits in the page must read back byte-identical."""
    page = SlottedPage(0, page_size=4096)
    stored = {}
    for record in records:
        slot = page.insert(record)
        stored[slot] = record
    for slot, record in stored.items():
        assert page.read(slot) == record


@settings(max_examples=50, deadline=None)
@given(
    records=st.lists(st.binary(min_size=1, max_size=40), min_size=2, max_size=20),
    data=st.data(),
)
def test_property_delete_subset_keeps_others(records, data):
    """Deleting some records never disturbs the remaining ones."""
    page = SlottedPage(0, page_size=4096)
    slots = [page.insert(record) for record in records]
    to_delete = data.draw(st.sets(st.sampled_from(slots), max_size=len(slots) - 1))
    for slot in to_delete:
        page.delete(slot)
    page.compact()
    for slot, record in zip(slots, records):
        if slot not in to_delete:
            assert page.read(slot) == record
