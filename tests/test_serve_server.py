"""Tests for the shard server, its typed client, the ``"remote"``
transport, and the mixed local/remote router — including the
bit-identical guarantee against a monolithic service."""

import os
import subprocess
import sys

import pytest

from repro.errors import (
    NodeNotFoundError,
    RemoteProtocolError,
    ShardError,
    UnknownGraphError,
)
from repro.graph.generators import grid_graph, power_law_graph
from repro.serve import ShardClient, ShardServer
from repro.service import PathService
from repro.shard import (
    REMOTE_TRANSPORT,
    ShardRouter,
    ShardSpec,
    available_transports,
)
from repro.service.planner import QuerySpec


def _seed_catalog(catalog_dir, graphs, lthd=None):
    with PathService(catalog_path=catalog_dir) as service:
        for name, graph in graphs.items():
            service.add_graph(name, graph, backend="sqlite",
                              db_path=os.path.join(catalog_dir, f"{name}.db"))
            if lthd is not None:
                service.build_segtable(name, lthd=lthd)


def _shapes(results):
    return [(None if r is None else (r.distance, tuple(r.path)))
            for r in results]


GRAPHS = {
    "alpha": power_law_graph(60, edges_per_node=2, seed=1),
    "beta": power_law_graph(70, edges_per_node=2, seed=2),
    "gamma": grid_graph(6, 6, seed=3),
}


@pytest.fixture
def server(tmp_path):
    """One running shard server over a warm-started two-graph catalog."""
    catalog = str(tmp_path / "srv")
    _seed_catalog(catalog, {"alpha": GRAPHS["alpha"], "beta": GRAPHS["beta"]},
                  lthd=3.0)
    service = PathService.open(catalog, shard_id="srv")
    with ShardServer(service, port=0, own_service=True) as running:
        yield running


class TestRemoteTransportRegistration:
    def test_importing_serve_registers_remote(self):
        assert REMOTE_TRANSPORT in available_transports()


class TestShardClient:
    def test_health_reports_shard_and_graphs(self, server):
        document = ShardClient(server.url).health()
        assert document["status"] == "ok"
        assert document["shard"] == "srv"
        assert sorted(document["graphs"]) == ["alpha", "beta"]

    def test_routing_entries_match_catalog(self, server):
        entries = ShardClient(server.url).routing_entries()
        assert sorted(entries) == ["alpha", "beta"]
        for entry in entries.values():
            assert entry.fingerprint

    def test_stats_carry_cache_counters(self, server):
        client = ShardClient(server.url)
        spec = QuerySpec(source=0, target=30, graph="alpha")
        client.shortest_path(spec)
        client.shortest_path(spec)  # second call hits the server cache
        stats = client.stats()
        assert stats["shard"] == "srv"
        assert stats["cache"]["hits"] >= 1

    def test_shortest_path_is_bit_identical_to_local(self, server):
        local = server.service.shortest_path(0, 30, graph="alpha")
        remote = ShardClient(server.url).shortest_path(
            QuerySpec(source=0, target=30, graph="alpha"))
        assert remote.distance == local.distance
        assert list(remote.path) == list(local.path)
        assert remote.stats is not None

    def test_explain_returns_full_plan(self, server):
        plan = ShardClient(server.url).explain(
            QuerySpec(source=0, target=30, graph="alpha", method="auto"))
        local = server.service.plan(
            QuerySpec(source=0, target=30, graph="alpha", method="auto"))
        assert plan.method == local.method
        assert plan.phases == tuple(local.phases)

    def test_plan_many_aligns_with_specs(self, server):
        specs = [QuerySpec(source=0, target=t, graph="alpha")
                 for t in (10, 20, 30)]
        plans = ShardClient(server.url).plan_many(specs)
        assert len(plans) == 3
        assert [p.spec.target for p in plans] == [10, 20, 30]

    def test_execute_batch_matches_local_batch(self, server):
        specs = [QuerySpec(source=0, target=t, graph="beta")
                 for t in (5, 15, 25, 35)]
        results, from_cache, stats, errors = ShardClient(server.url).execute(
            specs, concurrency=2)
        local = server.service.shortest_path_many(
            [(s.graph, s.source, s.target) for s in specs])
        assert _shapes(results) == _shapes(local.results)
        assert len(from_cache) == 4
        assert stats.total == 4
        assert errors == [None] * 4

    def test_query_errors_cross_the_wire_typed(self, server):
        client = ShardClient(server.url)
        with pytest.raises(UnknownGraphError):
            client.shortest_path(QuerySpec(source=0, target=1, graph="nope"))
        with pytest.raises(NodeNotFoundError):
            client.shortest_path(
                QuerySpec(source=999999, target=1, graph="alpha"))

    def test_unknown_endpoint_is_protocol_error(self, server):
        with pytest.raises(RemoteProtocolError, match="unknown endpoint"):
            ShardClient(server.url)._request("/no-such-endpoint")

    def test_stamp_ownership_persists_in_manifest(self, server):
        ShardClient(server.url).stamp_ownership("alpha", "srv")
        entries = ShardClient(server.url).routing_entries()
        assert entries["alpha"].shard == "srv"

    def test_calibrate_runs_server_side(self, server):
        profiles = ShardClient(server.url).calibrate(
            "sqlite", persist=False, probe_nodes=40,
            queries_per_method=1, repeats=1)
        assert "sqlite" in profiles
        assert profiles["sqlite"].calibrated_at


class TestRemoteRouter:
    @pytest.fixture
    def mixed(self, tmp_path):
        """A router over one remote shard (alpha, beta) and one local
        shard (gamma), plus a monolithic service hosting all three."""
        cat_remote = str(tmp_path / "remote")
        cat_local = str(tmp_path / "local")
        cat_mono = str(tmp_path / "mono")
        _seed_catalog(cat_remote,
                      {"alpha": GRAPHS["alpha"], "beta": GRAPHS["beta"]},
                      lthd=3.0)
        _seed_catalog(cat_local, {"gamma": GRAPHS["gamma"]}, lthd=3.0)
        _seed_catalog(cat_mono, dict(GRAPHS), lthd=3.0)
        service = PathService.open(cat_remote, shard_id="remote-shard")
        with ShardServer(service, port=0, own_service=True) as server:
            with ShardRouter.open([server.url, cat_local]) as router, \
                    PathService.open(cat_mono) as mono:
                yield router, mono, server

    BATCH = [
        ("alpha", 0, 30), ("gamma", 0, 35), ("beta", 1, 40),
        ("alpha", 2, 50), ("beta", 0, 25), ("gamma", 5, 30),
    ]

    def test_routes_remote_and_local_graphs(self, mixed):
        router, _, server = mixed
        assert sorted(router.graphs()) == ["alpha", "beta", "gamma"]
        remote_name = f"{server.host}:{server.port}"
        assert router.owner("alpha") == remote_name
        assert router.owner("gamma") == "local"

    def test_single_query_bit_identical_over_the_wire(self, mixed):
        router, mono, _ = mixed
        ours = router.shortest_path(0, 30, graph="alpha")
        theirs = mono.shortest_path(0, 30, graph="alpha")
        assert ours.distance == theirs.distance
        assert list(ours.path) == list(theirs.path)

    def test_mixed_scatter_is_bit_identical_to_monolith(self, mixed):
        router, mono, server = mixed
        scatter = router.shortest_path_many(self.BATCH, concurrency=2)
        monolith = mono.shortest_path_many(self.BATCH, concurrency=2)
        assert _shapes(scatter.results) == _shapes(monolith.results)
        remote_name = f"{server.host}:{server.port}"
        assert set(scatter.stats.per_shard) == {remote_name, "local"}
        assert scatter.shard_of[1] == "local"
        assert scatter.shard_of[0] == remote_name

    def test_batch_validation_fails_fast_over_the_wire(self, mixed):
        router, _, _ = mixed
        with pytest.raises(NodeNotFoundError):
            router.shortest_path_many([("alpha", 0, 30),
                                       ("beta", 999999, 1)])

    def test_remote_unreachable_pair_raises_typed(self, mixed):
        router, _, _ = mixed
        with pytest.raises(UnknownGraphError):
            router.shortest_path(0, 1, graph="delta")

    def test_explain_routes_to_remote_shard(self, mixed):
        router, mono, _ = mixed
        plan = router.explain(0, 30, graph="alpha")
        assert plan.method == mono.explain(0, 30, graph="alpha").method

    def test_service_accessor_refuses_remote_shards(self, mixed):
        router, _, server = mixed
        remote_name = f"{server.host}:{server.port}"
        with pytest.raises(ShardError, match="remote"):
            router.service(remote_name)
        assert router.service("local") is not None

    def test_move_involving_remote_shard_refuses(self, mixed):
        router, _, server = mixed
        remote_name = f"{server.host}:{server.port}"
        with pytest.raises(ShardError, match="remote"):
            router.move("alpha", "local")  # source is remote
        with pytest.raises(ShardError, match="remote"):
            router.move("gamma", remote_name)  # target is remote

    def test_check_health_probes_both_transports(self, mixed):
        router, _, server = mixed
        report = router.check_health()
        remote_name = f"{server.host}:{server.port}"
        assert report[remote_name]["status"] == "ok"
        assert report["local"]["status"] == "ok"


class TestRemoteSpecValidation:
    def test_remote_spec_requires_url(self, tmp_path):
        spec = ShardSpec(name="r", catalog_path=str(tmp_path),
                         transport=REMOTE_TRANSPORT)
        with pytest.raises(ShardError, match="http"):
            spec.open()

    def test_remote_spec_rejects_service_knobs(self, server):
        spec = ShardSpec(name="r", catalog_path=server.url,
                         transport=REMOTE_TRANSPORT,
                         service_options={"cache_size": 64})
        with pytest.raises(ShardError, match="unsupported service options"):
            spec.open()

    def test_remote_spec_accepts_client_knobs(self, server):
        spec = ShardSpec(name="r", catalog_path=server.url,
                         transport=REMOTE_TRANSPORT,
                         service_options={"timeout": 5.0, "retries": 1})
        transport = spec.open()
        try:
            assert transport.client.timeout == 5.0
            assert transport.client.retries == 1
        finally:
            transport.close()


class TestServeCLI:
    def test_cli_serves_until_terminated(self, tmp_path):
        catalog = str(tmp_path / "cli")
        _seed_catalog(catalog, {"alpha": GRAPHS["alpha"]})
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.getcwd(), "src"),
                          env.get("PYTHONPATH", "")]))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--catalog", catalog,
             "--port", "0", "--shard-id", "cli-shard"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            banner = process.stdout.readline()
            assert "serving shard 'cli-shard'" in banner
            assert "alpha" in banner
            url = banner.rsplit(" at ", 1)[1].strip()
            client = ShardClient(url, timeout=10.0)
            assert client.health()["shard"] == "cli-shard"
            result = client.shortest_path(
                QuerySpec(source=0, target=30, graph="alpha"))
            assert result.distance > 0
        finally:
            process.terminate()
            process.wait(timeout=10)
