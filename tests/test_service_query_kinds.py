"""Tests for the richer query-kind surface: planner validation of
``bounded_hop`` / ``reachability``, the one-to-many shared-frontier
Dijkstra, and ``share_frontier`` batch grouping — locally and over the
serve wire protocol."""

import pytest

from repro.core.multi import METHOD_HOPS, METHOD_REACH, dijkstra_one_to_many
from repro.errors import (
    InvalidQueryError,
    NodeNotFoundError,
    PathNotFoundError,
)
from repro.graph.generators import power_law_graph
from repro.serve import ShardClient, ShardServer
from repro.service import PathService
from repro.service.planner import QUERY_KINDS, QuerySpec


@pytest.fixture
def service(small_power_graph):
    with PathService() as service:
        service.add_graph("default", small_power_graph)
        yield service


def _shape(result):
    return None if result is None else (result.distance, tuple(result.path))


class TestKindPlanning:
    def test_unknown_kind_rejected(self, service):
        with pytest.raises(InvalidQueryError, match="unknown query kind"):
            service.shortest_path(0, 5, kind="teleport")
        assert set(QUERY_KINDS) == {"path", "bounded_hop", "reachability"}

    def test_path_kind_forbids_max_hops(self, service):
        with pytest.raises(InvalidQueryError, match="bounded_hop"):
            service.shortest_path(0, 5, max_hops=3)

    def test_bounded_hop_requires_positive_max_hops(self, service):
        with pytest.raises(InvalidQueryError, match="max_hops"):
            service.shortest_path(0, 5, kind="bounded_hop")
        with pytest.raises(InvalidQueryError, match="max_hops"):
            service.shortest_path(0, 5, kind="bounded_hop", max_hops=0)

    def test_reachability_forbids_max_hops(self, service):
        with pytest.raises(InvalidQueryError, match="max_hops"):
            service.shortest_path(0, 5, kind="reachability", max_hops=3)

    def test_memory_methods_rejected_for_hop_kinds(self, service):
        with pytest.raises(InvalidQueryError, match="memory method"):
            service.shortest_path(0, 5, kind="reachability", method="MDJ")

    def test_hop_plans_resolve_to_hop_driver(self, service):
        reach = service.explain(0, 5, kind="reachability")
        assert reach.method == METHOD_REACH
        assert not reach.bidirectional
        bounded = service.explain(0, 5, kind="bounded_hop", max_hops=4)
        assert bounded.method == METHOD_HOPS
        assert bounded.spec.max_hops == 4
        # The cost model prices the layered driver: a hop budget caps
        # the predicted rounds.
        assert bounded.estimated_iterations is not None
        assert bounded.estimated_iterations <= 4
        assert bounded.predicted_seconds is not None

    def test_hop_kinds_do_not_skew_planner_bias(self, service):
        profile = service.cost_model().profile
        before = profile.global_bias
        for _ in range(5):
            service.shortest_path(0, 5, kind="reachability",
                                  use_cache=False)
        assert profile.global_bias == before


class TestOneToMany:
    def test_matches_per_pair_dijkstra(self, service, small_power_graph):
        targets = [5, 40, 99, 40, 7]  # duplicate on purpose
        fanout = service.one_to_many(0, targets)
        assert len(fanout) == 4  # deduplicated
        for target in set(targets):
            single = service.shortest_path(0, target, method="DJ",
                                           use_cache=False)
            assert _shape(fanout[target]) == _shape(single)

    def test_unreachable_target_is_none(self, tmp_path):
        graph = power_law_graph(40, edges_per_node=2, seed=3)
        graph.add_node(999)  # isolated
        with PathService() as service:
            service.add_graph("default", graph)
            fanout = service.one_to_many(0, [5, 999])
            assert fanout[5] is not None
            assert fanout[999] is None

    def test_unknown_nodes_rejected(self, service):
        with pytest.raises(NodeNotFoundError):
            service.one_to_many(123456, [0, 1])
        with pytest.raises(NodeNotFoundError):
            service.one_to_many(0, [1, 123456])

    def test_core_driver_handles_source_as_target(self, service):
        host = service._host("default")
        with host.pool.lease() as store:
            fanout = dijkstra_one_to_many(store, 0, [0, 5])
        assert fanout[0].distance == 0.0
        assert fanout[0].path == [0]


class TestShareFrontier:
    def test_validates_flag(self, service):
        with pytest.raises(InvalidQueryError, match="share_frontier"):
            service.shortest_path_many([(0, 5)], share_frontier="always")

    def test_forced_sharing_matches_per_pair_batch(self, service):
        queries = [(0, 5), (0, 40), (0, 99), (3, 8)]
        baseline = service.shortest_path_many(queries)
        service.clear_cache()
        shared = service.shortest_path_many(queries, share_frontier=True)
        assert [_shape(r) for r in shared.results] \
            == [_shape(r) for r in baseline.results]
        # The three same-source queries collapsed into one frontier.
        assert shared.stats.shared_frontier_groups == 1
        assert shared.stats.shared_frontier_queries == 3
        assert shared.stats.executed <= baseline.stats.executed - 2

    def test_single_target_groups_are_not_shared(self, service):
        batch = service.shortest_path_many([(0, 5), (3, 8)],
                                           share_frontier=True)
        assert batch.stats.shared_frontier_groups == 0

    def test_explicit_methods_opt_out(self, service):
        batch = service.shortest_path_many(
            [(0, 5), (0, 40), (0, 99)], method="BDJ", share_frontier=True)
        assert batch.stats.shared_frontier_groups == 0

    def test_shared_unreachable_raises_at_input_position(self, tmp_path):
        graph = power_law_graph(40, edges_per_node=2, seed=3)
        graph.add_node(999)  # isolated
        with PathService() as service:
            service.add_graph("default", graph)
            with pytest.raises(PathNotFoundError, match="999"):
                service.shortest_path_many(
                    [(0, 5), (0, 999), (0, 7)], share_frontier=True,
                    raise_on_unreachable=True)


class TestKindsOverTheWire:
    def test_remote_kinds_and_share_frontier(self, small_power_graph):
        service = PathService()
        service.add_graph("default", small_power_graph)
        local_reach = _shape(service.shortest_path(
            0, 99, kind="reachability", use_cache=False))
        with ShardServer(service, port=0, own_service=True) as server:
            client = ShardClient(server.url)
            spec = QuerySpec(source=0, target=99, graph="default",
                             kind="reachability")
            assert _shape(client.shortest_path(spec,
                                               use_cache=False)) \
                == local_reach
            bounded = client.shortest_path(
                QuerySpec(source=0, target=99, graph="default",
                          kind="bounded_hop",
                          max_hops=int(local_reach[0])),
                use_cache=False)
            assert bounded.distance == local_reach[0]
            specs = [QuerySpec(source=0, target=t, graph="default")
                     for t in (5, 40, 99)]
            results, _, stats, _ = client.execute(specs, share_frontier=True)
            assert stats.shared_frontier_groups == 1
            assert all(r is not None for r in results)

    def test_malformed_share_frontier_rejected_on_the_wire(
            self, small_power_graph):
        from repro.errors import RemoteProtocolError
        service = PathService()
        service.add_graph("default", small_power_graph)
        with ShardServer(service, port=0, own_service=True) as server:
            client = ShardClient(server.url)
            with pytest.raises(RemoteProtocolError, match="share_frontier"):
                client.execute(
                    [QuerySpec(source=0, target=5, graph="default")],
                    share_frontier="sometimes")
