"""Tests for column types, schemas and expressions."""

import pytest

from repro.errors import QueryError, SchemaError, TypeMismatchError
from repro.rdb.expressions import BinaryOp, col, lit, as_callable
from repro.rdb.schema import Column, TableSchema
from repro.rdb.types import FLOAT, INTEGER, TEXT, coerce_value, python_type


class TestTypes:
    def test_python_types(self):
        assert python_type(INTEGER) is int
        assert python_type(FLOAT) is float
        assert python_type(TEXT) is str

    def test_python_type_unknown(self):
        with pytest.raises(TypeMismatchError):
            python_type("BLOB")

    def test_coerce_integer(self):
        assert coerce_value(5, INTEGER) == 5
        assert coerce_value(True, INTEGER) == 1
        assert coerce_value(5.0, INTEGER) == 5

    def test_coerce_integer_rejects_fraction(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(5.5, INTEGER)

    def test_coerce_float(self):
        assert coerce_value(5, FLOAT) == 5.0
        assert coerce_value(2.5, FLOAT) == 2.5
        with pytest.raises(TypeMismatchError):
            coerce_value("x", FLOAT)

    def test_coerce_text(self):
        assert coerce_value("abc", TEXT) == "abc"
        with pytest.raises(TypeMismatchError):
            coerce_value(5, TEXT)

    def test_null_handling(self):
        assert coerce_value(None, INTEGER) is None
        with pytest.raises(TypeMismatchError):
            coerce_value(None, INTEGER, nullable=False)


class TestSchema:
    def make_schema(self) -> TableSchema:
        return TableSchema(
            "TEdges",
            [Column("fid", INTEGER), Column("tid", INTEGER), Column("cost", FLOAT)],
        )

    def test_column_validation(self):
        with pytest.raises(SchemaError):
            Column("bad name", INTEGER)
        with pytest.raises(SchemaError):
            Column("x", "BLOB")

    def test_schema_requires_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_duplicate_column_names(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INTEGER), Column("a", FLOAT)])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INTEGER)], primary_key="b")

    def test_positions_and_lookup(self):
        schema = self.make_schema()
        assert schema.column_names == ["fid", "tid", "cost"]
        assert schema.position("cost") == 2
        assert schema.column("tid").type == INTEGER
        assert schema.has_column("fid")
        assert not schema.has_column("missing")
        with pytest.raises(SchemaError):
            schema.position("missing")

    def test_row_to_tuple_and_back(self):
        schema = self.make_schema()
        values = schema.row_to_tuple({"fid": 1, "tid": 2, "cost": 3})
        assert values == (1, 2, 3.0)
        assert schema.tuple_to_row(values) == {"fid": 1, "tid": 2, "cost": 3.0}

    def test_missing_columns_become_null(self):
        schema = self.make_schema()
        assert schema.row_to_tuple({"fid": 1}) == (1, None, None)

    def test_unknown_column_rejected(self):
        schema = self.make_schema()
        with pytest.raises(SchemaError):
            schema.row_to_tuple({"fid": 1, "oops": 2})

    def test_tuple_arity_checked(self):
        schema = self.make_schema()
        with pytest.raises(SchemaError):
            schema.tuple_to_row((1, 2))


class TestExpressions:
    def test_column_and_literal(self):
        row = {"a": 3, "b": 4}
        assert col("a")(row) == 3
        assert lit(7)(row) == 7

    def test_missing_column_raises(self):
        with pytest.raises(QueryError):
            col("missing")({"a": 1})

    def test_arithmetic(self):
        row = {"a": 3, "b": 4}
        assert (col("a") + col("b"))(row) == 7
        assert (col("a") - 1)(row) == 2
        assert (col("a") * 2)(row) == 6

    def test_comparisons(self):
        row = {"a": 3}
        assert (col("a") < 5)(row) is True
        assert (col("a") >= 5)(row) is False
        assert col("a").eq(3)(row) is True
        assert col("a").ne(3)(row) is False

    def test_boolean_connectives(self):
        row = {"a": 3, "b": 0}
        assert (col("a").eq(3)).and_(col("b").eq(0))(row) is True
        assert (col("a").eq(9)).or_(col("b").eq(0))(row) is True

    def test_null_propagation(self):
        row = {"a": None}
        assert (col("a") + 1)(row) is None
        assert (col("a") < 1)(row) is None

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            BinaryOp("%%", lit(1), lit(2))

    def test_as_callable(self):
        assert as_callable(lambda row: 5)({}) == 5
        assert as_callable(lit(2))({}) == 2
        with pytest.raises(QueryError):
            as_callable(42)
