"""Observability wired through the service layer: per-query trace trees
(plan / cache lookup / pool checkout / FEM iterations), ``explain(...,
analyze=True)``, the registry counters the executor and caches publish,
and the canonical-vs-deprecated stats key schema."""

import pytest

from repro.errors import PathNotFoundError
from repro.core.stats import BatchStats
from repro.graph.generators import path_graph, power_law_graph
from repro.graph.model import Graph
from repro.obs.schema import (
    METRIC_BATCHES,
    METRIC_CACHE_HITS,
    METRIC_CACHE_MISSES,
    METRIC_NOT_FOUND,
    METRIC_POOL_CHECKOUTS,
    METRIC_QUERIES,
    METRIC_QUERY_LATENCY,
    METRIC_SINGLE_FLIGHT,
)
from repro.service import PathService


@pytest.fixture
def service():
    with PathService() as svc:
        svc.add_graph("g", power_law_graph(60, edges_per_node=2, seed=7),
                      backend="sqlite")
        yield svc


class TestQueryTrace:
    def test_shortest_path_attaches_full_tree(self, service):
        result = service.shortest_path(0, 30, graph="g")
        trace = result.trace
        assert trace is not None
        root = trace.root
        assert root.name == "query"
        assert root.tags["graph"] == "g"
        assert root.duration_s > 0.0
        # The per-phase children the issue promises.
        assert trace.find("plan")
        assert trace.find("cache.lookup")
        assert trace.find("execute")
        assert trace.find("pool.checkout")
        iterations = trace.find("fem.iteration")
        assert iterations, "per-iteration spans must be present"
        assert all("frontier" in s.tags for s in iterations)
        # Summed direct children stay within the root's wall time.
        assert root.child_seconds() <= root.duration_s * 1.5 + 1e-6

    def test_cache_hit_is_traced_as_hit(self, service):
        service.shortest_path(0, 30, graph="g")
        result = service.shortest_path(0, 30, graph="g")
        lookup = result.trace.find("cache.lookup")[0]
        assert lookup.tags["outcome"] == "hit"
        assert not result.trace.find("fem.iteration")  # nothing executed

    def test_explain_analyze_carries_trace(self, service):
        plan = service.explain(0, 30, graph="g", analyze=True)
        assert plan.trace is not None
        assert plan.trace.find("fem.iteration")
        # plain explain stays cheap and traceless
        assert service.explain(0, 30, graph="g").trace is None

    def test_tracing_opt_out(self):
        with PathService(tracing=False) as svc:
            svc.add_graph("g", path_graph(5, weight_range=(1, 1)))
            assert svc.shortest_path(0, 4, graph="g").trace is None


class TestServiceMetrics:
    def test_query_counters_and_latency(self, service):
        service.shortest_path(0, 30, graph="g")
        registry = service.registry
        assert registry.total(METRIC_QUERIES) == 1
        labels = registry.histogram_labels(METRIC_QUERY_LATENCY)
        assert {"kind": "path"} in labels
        assert registry.summary(METRIC_QUERY_LATENCY)["count"] == 1
        assert registry.total(METRIC_POOL_CHECKOUTS) >= 1

    def test_cache_counters_match_cache_info(self, service):
        service.shortest_path(0, 30, graph="g")
        service.shortest_path(0, 30, graph="g")
        registry = service.registry
        info = service.cache_info()
        assert registry.total(METRIC_CACHE_HITS) == info.hits == 1
        assert registry.total(METRIC_CACHE_MISSES) == info.misses == 1

    def test_not_found_counter(self):
        graph = Graph(directed=True)
        graph.add_edge(0, 1, 1.0)
        graph.add_node(2)
        with PathService() as svc:
            svc.add_graph("g", graph, backend="sqlite")
            with pytest.raises(PathNotFoundError):
                svc.shortest_path(0, 2, graph="g")
            assert svc.registry.total(METRIC_NOT_FOUND) == 1

    def test_batch_publishes_mode_and_single_flight(self):
        # cache_size=0: the duplicated pair cannot be served by the
        # result cache, so batch-local single-flight replay answers it.
        with PathService(cache_size=0) as svc:
            svc.add_graph("g", power_law_graph(60, edges_per_node=2, seed=7),
                          backend="sqlite")
            pairs = [(0, 30), (0, 30), (1, 20)]
            batch = svc.shortest_path_many(pairs, graph="g")
            registry = svc.registry
            assert registry.value(METRIC_BATCHES, {"mode": "serial"}) == 1
            assert registry.total(METRIC_SINGLE_FLIGHT) == 1
            assert batch.stats.single_flight_hits == 1
            assert batch.stats.total == 3

    def test_metrics_snapshot_shape(self, service):
        service.shortest_path(0, 30, graph="g")
        snap = service.metrics()
        assert snap[METRIC_QUERIES]["type"] == "counter"
        latency = snap[METRIC_QUERY_LATENCY]
        assert latency["type"] == "histogram"
        assert latency["values"][0]["count"] == 1
        assert "+Inf" in latency["values"][0]["buckets"]


class TestStatsSchema:
    def test_batch_stats_canonical_and_alias_keys(self):
        stats = BatchStats(total=2, executed=2, total_time=1.5,
                           queue_time=0.25, execute_time=1.0)
        doc = stats.as_dict()
        for canonical, legacy in (("total_time_s", "total_time"),
                                  ("queue_time_s", "queue_time"),
                                  ("execute_time_s", "execute_time")):
            assert doc[canonical] == doc[legacy]

    def test_batch_stats_from_dict_reads_both_generations(self):
        canonical_only = {"total": 1, "total_time_s": 2.0,
                          "queue_time_s": 0.5, "execute_time_s": 1.5}
        legacy_only = {"total": 1, "total_time": 2.0,
                       "queue_time": 0.5, "execute_time": 1.5}
        for wire in (canonical_only, legacy_only):
            stats = BatchStats.from_dict(wire)
            assert stats.total_time == 2.0
            assert stats.queue_time == 0.5
            assert stats.execute_time == 1.5

    def test_roundtrip_is_stable(self):
        stats = BatchStats(total=3, executed=2, cache_hits=1,
                           total_time=0.75)
        again = BatchStats.from_dict(stats.as_dict())
        assert again.total == 3
        assert again.total_time == 0.75
