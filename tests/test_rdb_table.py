"""Tests for the Table abstraction (heap + indexes)."""

import pytest

from repro.errors import CatalogError, ConstraintViolationError, QueryError
from repro.rdb.engine import Database
from repro.rdb.schema import Column
from repro.rdb.types import FLOAT, INTEGER, TEXT


@pytest.fixture
def database():
    db = Database(buffer_capacity=16)
    yield db
    db.close()


@pytest.fixture
def edges(database):
    table = database.create_table(
        "TEdges",
        [Column("fid", INTEGER), Column("tid", INTEGER), Column("cost", FLOAT)],
    )
    table.insert_many(
        [
            {"fid": 1, "tid": 2, "cost": 4.0},
            {"fid": 1, "tid": 3, "cost": 2.0},
            {"fid": 2, "tid": 3, "cost": 1.0},
            {"fid": 3, "tid": 4, "cost": 5.0},
        ]
    )
    return table


class TestTableBasics:
    def test_insert_and_scan(self, edges):
        assert edges.row_count == 4
        rows = list(edges.scan())
        assert {row["fid"] for row in rows} == {1, 2, 3}

    def test_read_by_rid(self, edges):
        rid, row = next(edges.scan_with_rids())
        assert edges.read(rid) == row

    def test_lookup_without_index_scans(self, edges):
        rows = edges.lookup("fid", 1)
        assert len(rows) == 2

    def test_lookup_with_index(self, edges):
        edges.create_index("fid")
        rows = edges.lookup("fid", 1)
        assert {row["tid"] for row in rows} == {2, 3}

    def test_range_lookup_with_btree(self, edges):
        edges.create_index("cost")
        rows = edges.range_lookup("cost", 1.0, 4.0)
        assert [row["cost"] for row in rows] == [1.0, 2.0, 4.0]

    def test_range_lookup_without_index(self, edges):
        rows = edges.range_lookup("cost", 2.0, 5.0)
        assert {row["cost"] for row in rows} == {2.0, 4.0, 5.0}

    def test_delete_where(self, edges):
        deleted = edges.delete_where(lambda row: row["fid"] == 1)
        assert deleted == 2
        assert edges.row_count == 2

    def test_update_where(self, edges):
        updated = edges.update_where(
            lambda row: row["fid"] == 1,
            lambda row: {"cost": row["cost"] + 10},
        )
        assert updated == 2
        assert {row["cost"] for row in edges.lookup("fid", 1)} == {12.0, 14.0}

    def test_update_keeps_indexes_consistent(self, edges):
        edges.create_index("tid")
        edges.update_where(lambda row: row["tid"] == 3, lambda row: {"tid": 9})
        assert edges.lookup("tid", 3) == []
        assert len(edges.lookup("tid", 9)) == 2

    def test_truncate(self, edges):
        edges.create_index("fid")
        edges.truncate()
        assert edges.row_count == 0
        assert edges.lookup("fid", 1) == []
        edges.insert({"fid": 9, "tid": 9, "cost": 1.0})
        assert edges.row_count == 1


class TestIndexManagement:
    def test_unique_index_enforced(self, database):
        table = database.create_table("T", [Column("nid", INTEGER)])
        table.create_index("nid", unique=True)
        table.insert({"nid": 1})
        with pytest.raises(ConstraintViolationError):
            table.insert({"nid": 1})
        # The failed insert must not leave a phantom row behind.
        assert table.row_count == 1

    def test_duplicate_index_name(self, edges):
        edges.create_index("fid")
        with pytest.raises(CatalogError):
            edges.create_index("fid")

    def test_drop_index(self, edges):
        info = edges.create_index("fid")
        edges.drop_index(info.name)
        with pytest.raises(CatalogError):
            edges.drop_index(info.name)

    def test_unknown_index_kind(self, edges):
        with pytest.raises(QueryError):
            edges.create_index("fid", kind="bitmap")

    def test_hash_index_lookup(self, edges):
        edges.create_index("fid", kind="hash", name="hash_fid")
        assert len(edges.lookup("fid", 1)) == 2

    def test_index_created_over_existing_rows(self, edges):
        info = edges.create_index("tid")
        assert len(info.structure) == edges.row_count

    def test_clustered_preference(self, edges):
        edges.create_index("fid", name="plain")
        clustered = edges.create_index("fid", clustered=True, name="clu")
        assert edges.index_on("fid").name == clustered.name

    def test_bulk_load_sorted_clusters_keys(self, database):
        table = database.create_table(
            "Sorted", [Column("k", INTEGER), Column("v", TEXT)]
        )
        rows = [{"k": key, "v": f"v{key}"} for key in (5, 1, 4, 2, 3, 1, 5)]
        table.bulk_load(rows, order_by="k")
        scanned = [row["k"] for row in table.scan()]
        assert scanned == sorted(scanned)


class TestPrimaryKey:
    def test_primary_key_without_index(self, database):
        table = database.create_table(
            "PK", [Column("nid", INTEGER), Column("x", INTEGER)], primary_key="nid"
        )
        table.insert({"nid": 1, "x": 1})
        with pytest.raises(ConstraintViolationError):
            table.insert({"nid": 1, "x": 2})
