"""Tests for the query planner (QuerySpec -> QueryPlan, method="auto")."""

import pytest

from repro.errors import InvalidQueryError
from repro.graph.generators import grid_graph, path_graph, power_law_graph
from repro.graph.stats import compute_statistics
from repro.service import PathService, QuerySpec
from repro.service.planner import (
    METHODS,
    NODE_AT_A_TIME,
    SET_AT_A_TIME,
    normalize_method,
    plan_query,
)


class TestNormalizeMethod:
    def test_known_methods_upper_cased(self):
        assert normalize_method("bsdj") == "BSDJ"
        assert normalize_method("MDJ") == "MDJ"

    def test_auto_sentinel(self):
        assert normalize_method("auto") == "AUTO"
        assert normalize_method("Auto") == "AUTO"

    def test_unknown_method_raises(self):
        with pytest.raises(InvalidQueryError):
            normalize_method("ASTAR")

    def test_methods_constant(self):
        assert set(METHODS) == {"DJ", "BDJ", "BSDJ", "BBFS", "BSEG",
                                "MDJ", "MBDJ"}


class TestPlanQuery:
    def _plan(self, graph, method="auto", has_segtable=False, estimate=False):
        spec = QuerySpec(source=0, target=1, method=method)
        return plan_query(spec, compute_statistics(graph), has_segtable,
                          estimate=estimate)

    def test_explicit_method_passthrough(self):
        plan = self._plan(grid_graph(3, 3, seed=1), method="bdj")
        assert plan.method == "BDJ"
        assert "explicitly" in plan.reason

    def test_explicit_bseg_without_segtable_raises(self):
        with pytest.raises(InvalidQueryError):
            self._plan(grid_graph(3, 3, seed=1), method="BSEG")

    def test_auto_small_graph_picks_dj(self):
        plan = self._plan(grid_graph(5, 5, seed=2))
        assert plan.method == "DJ"
        assert not plan.bidirectional
        assert plan.frontier_mode == NODE_AT_A_TIME

    def test_auto_power_law_graph_picks_bsdj(self):
        plan = self._plan(power_law_graph(120, edges_per_node=2, seed=3))
        assert plan.method == "BSDJ"
        assert plan.bidirectional
        assert plan.frontier_mode == SET_AT_A_TIME

    def test_auto_prefers_segtable(self):
        plan = self._plan(power_law_graph(120, edges_per_node=2, seed=3),
                          has_segtable=True)
        assert plan.method == "BSEG"
        assert plan.uses_segtable

    def test_auto_never_picks_bseg_without_segtable(self):
        for graph in (path_graph(5), grid_graph(5, 5, seed=2),
                      power_law_graph(200, edges_per_node=3, seed=4)):
            assert self._plan(graph).method != "BSEG"

    def test_estimated_iterations_positive(self):
        for method in METHODS:
            if method == "BSEG":
                continue
            plan = self._plan(grid_graph(4, 4, seed=5), method=method,
                              estimate=True)
            assert plan.estimated_iterations >= 1

    def test_explicit_method_skips_estimate_even_with_eager_stats(self):
        """The hot-path regression fix: eagerly-passed statistics must not
        trigger the iteration estimate unless estimate=True was asked."""
        plan = self._plan(grid_graph(4, 4, seed=5), method="BDJ")
        assert plan.estimated_iterations is None
        assert plan.cost_breakdown is None

    def test_describe_mentions_method_and_operators(self):
        plan = self._plan(power_law_graph(120, edges_per_node=2, seed=3))
        text = plan.describe()
        assert "BSDJ" in text
        assert "F -> E -> M" in text
        assert "reason:" in text

    def test_auto_plan_carries_cost_breakdown(self):
        plan = self._plan(power_law_graph(120, edges_per_node=2, seed=3))
        assert plan.cost_breakdown is not None
        assert plan.predicted_seconds is not None
        assert set(plan.cost_breakdown) == {"DJ", "BDJ", "BSDJ", "BSEG"}
        assert not plan.cost_breakdown["BSEG"].eligible  # no SegTable built
        assert plan.cost_breakdown[plan.method].seconds == plan.predicted_seconds
        assert "costs:" in self._plan(
            power_law_graph(120, edges_per_node=2, seed=3),
            estimate=True).describe()

    def test_explain_estimate_prices_explicit_methods(self):
        plan = self._plan(grid_graph(4, 4, seed=5), method="BDJ",
                          estimate=True)
        assert plan.cost_breakdown is not None
        assert plan.cost_breakdown["BDJ"].seconds > 0


class TestServiceExplain:
    def test_explain_matches_execution(self, small_power_graph):
        with PathService() as service:
            service.add_graph("default", small_power_graph)
            plan = service.explain(0, 50)
            result = service.shortest_path(0, 50)
            assert result.stats.method == plan.method

    def test_explain_changes_after_segtable_build(self, small_power_graph):
        with PathService() as service:
            service.add_graph("default", small_power_graph)
            before = service.explain(0, 50).method
            service.build_segtable(lthd=5)
            after = service.explain(0, 50).method
            assert before == "BSDJ"
            assert after == "BSEG"

    def test_explain_validates_nodes(self, small_power_graph):
        from repro.errors import NodeNotFoundError
        with PathService() as service:
            service.add_graph("default", small_power_graph)
            with pytest.raises(NodeNotFoundError):
                service.explain(0, 10_000)
