"""Metrics under concurrency: a parallel batch, a thread storm, and a
mid-batch failover (reusing the ``test_serve_failover`` harness) must all
leave the registry consistent — counter sums equal batch totals, no lost
increments, histogram counts match executed queries."""

import threading

from test_serve_failover import (
    BATCH,
    REPLICATED,
    _DyingOnExecuteHandler,
    _seed_catalog,
    _shapes,
)

from repro.graph.generators import power_law_graph
from repro.obs.schema import (
    METRIC_CACHE_HITS,
    METRIC_CACHE_MISSES,
    METRIC_FAILOVERS,
    METRIC_QUERIES,
    METRIC_QUERY_LATENCY,
    METRIC_ROUTER_QUERIES,
    METRIC_SHARD_ERRORS,
)
from repro.serve import ShardServer
from repro.service import PathService
from repro.shard import ShardRouter

GRAPH = power_law_graph(100, edges_per_node=2, seed=21)


class TestParallelBatch:
    def test_parallel_batch_counts_are_exact(self):
        with PathService() as service:
            service.add_graph("g", GRAPH, backend="sqlite")
            pairs = [(0, t) for t in range(40, 80)]
            batch = service.shortest_path_many(pairs, graph="g",
                                               concurrency=4)
            registry = service.registry
            stats = batch.stats
            assert stats.total == len(pairs)
            # Every executed query was counted exactly once — by the
            # query counter AND the latency histogram.
            assert registry.total(METRIC_QUERIES) == stats.executed
            assert registry.summary(METRIC_QUERY_LATENCY)["count"] == \
                stats.executed
            # A second identical parallel batch answers from cache; the
            # hit counters absorb exactly the batch's hits.
            hits_before = registry.total(METRIC_CACHE_HITS)
            again = service.shortest_path_many(pairs, graph="g",
                                               concurrency=4)
            assert again.stats.executed == 0
            assert registry.total(METRIC_CACHE_HITS) - hits_before == \
                again.stats.cache_hits == len(pairs)
            assert registry.total(METRIC_QUERIES) == stats.executed

    def test_thread_storm_loses_no_increments(self):
        with PathService() as service:
            service.add_graph("g", GRAPH, backend="sqlite")
            threads, per_thread = 8, 12
            errors = []

            def work(offset):
                try:
                    for i in range(per_thread):
                        target = 40 + (offset * per_thread + i) % 50
                        service.shortest_path(0, target, graph="g",
                                              use_cache=False)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            workers = [threading.Thread(target=work, args=(n,))
                       for n in range(threads)]
            for t in workers:
                t.start()
            for t in workers:
                t.join()
            assert not errors
            total = threads * per_thread
            registry = service.registry
            assert registry.total(METRIC_QUERIES) == total
            assert registry.summary(METRIC_QUERY_LATENCY)["count"] == total


class TestFailoverConsistency:
    def test_mid_batch_failover_keeps_registry_consistent(self, tmp_path):
        cat_primary = str(tmp_path / "primary")
        cat_replica = str(tmp_path / "replica")
        _seed_catalog(cat_primary, REPLICATED, lthd=3.0)
        _seed_catalog(cat_replica, REPLICATED, lthd=3.0)
        with PathService.open(cat_replica) as reference:
            expected = _shapes(reference.shortest_path_many(BATCH).results)
        service = PathService.open(cat_primary, shard_id="primary")
        with ShardServer(service, port=0, own_service=True,
                         handler_class=_DyingOnExecuteHandler) as server:
            remote_name = f"{server.host}:{server.port}"
            with ShardRouter.open([server.url, cat_replica],
                                  remote_retries=0) as router:
                scatter = router.shortest_path_many(BATCH, concurrency=2)
                assert all(r is not None for r in scatter.results)
                assert _shapes(scatter.results) == expected
                registry = router.registry
                stats = scatter.stats
                # Failover and error counters mirror the batch stats.
                assert stats.failovers == len(BATCH)
                assert registry.total(METRIC_FAILOVERS) == stats.failovers
                assert registry.value(METRIC_SHARD_ERRORS,
                                      {"shard": remote_name}) == \
                    stats.per_shard_errors[remote_name]
                # Every query the batch reports as executed ran on the
                # local replica, which publishes into the SAME registry.
                assert stats.executed == len(BATCH)
                assert registry.total(METRIC_QUERIES) == stats.executed
                assert registry.summary(METRIC_QUERY_LATENCY)["count"] == \
                    stats.executed
                assert registry.total(METRIC_ROUTER_QUERIES) == len(BATCH)

    def test_failover_counters_survive_repeat_batches(self, tmp_path):
        cat_primary = str(tmp_path / "primary")
        cat_replica = str(tmp_path / "replica")
        _seed_catalog(cat_primary, REPLICATED, lthd=3.0)
        _seed_catalog(cat_replica, REPLICATED, lthd=3.0)
        service = PathService.open(cat_primary, shard_id="primary")
        with ShardServer(service, port=0, own_service=True,
                         handler_class=_DyingOnExecuteHandler) as server:
            with ShardRouter.open([server.url, cat_replica],
                                  remote_retries=0) as router:
                first = router.shortest_path_many(BATCH, concurrency=2)
                second = router.shortest_path_many(BATCH, concurrency=2)
                registry = router.registry
                # Counters accumulate across batches without double or
                # lost counting: the second batch answers from the
                # replica's cache (down-shard routing skips the failover
                # detour), so only executed queries add latency samples.
                expected_failovers = (first.stats.failovers
                                      + second.stats.failovers)
                assert registry.total(METRIC_FAILOVERS) == expected_failovers
                executed = first.stats.executed + second.stats.executed
                assert registry.total(METRIC_QUERIES) == executed
                assert registry.summary(METRIC_QUERY_LATENCY)["count"] == \
                    executed
                hits = first.stats.cache_hits + second.stats.cache_hits
                assert registry.total(METRIC_CACHE_HITS) == hits
                assert registry.total(METRIC_CACHE_MISSES) >= \
                    first.stats.executed
