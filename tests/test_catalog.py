"""Tests for the persistent session catalog: manifests, warm starts,
fingerprint invalidation, and the maintenance CLI."""

import json
import os
import sqlite3

import pytest

from repro.catalog import Catalog, load_manifest
from repro.catalog.cli import main as catalog_main
from repro.core.store.registry import create_store
from repro.errors import (
    CatalogEntryNotFoundError,
    DuplicateGraphError,
    FingerprintMismatchError,
    ManifestError,
    PersistenceUnsupportedError,
)
from repro.graph.fingerprint import fingerprint_graph
from repro.graph.generators import grid_graph, power_law_graph
from repro.service import PathService


def _shapes(batch):
    return [(None if r is None else (r.distance, tuple(r.path)))
            for r in batch.results]


@pytest.fixture
def catalog_dir(tmp_path):
    return str(tmp_path / "catalog")


def _build_cold_session(catalog_dir, graph, name="social", lthd=6.0):
    """Register ``graph`` in a catalog-bound service, build its SegTable,
    and return the db_path used."""
    db_path = os.path.join(catalog_dir, f"{name}.db")
    with PathService(catalog_path=catalog_dir) as service:
        service.add_graph(name, graph, backend="sqlite", db_path=db_path)
        service.build_segtable(name, lthd=lthd)
    return db_path


class TestFingerprint:
    def test_store_and_graph_fingerprints_agree(self, tmp_path):
        graph = grid_graph(4, 4, seed=3)
        store = create_store("sqlite", path=str(tmp_path / "g.db"))
        try:
            store.load_graph(graph)
            assert store.content_fingerprint() == fingerprint_graph(graph)
        finally:
            store.close()

    def test_fingerprint_sensitive_to_weight_change(self):
        a = grid_graph(3, 3, seed=1)
        b = a.copy()
        b.add_edge(0, 1, 99.5)
        assert fingerprint_graph(a) != fingerprint_graph(b)

    def test_in_memory_store_refuses_persistence(self):
        store = create_store("sqlite")
        try:
            assert not store.supports_persistence()
        finally:
            store.close()

    def test_minidb_store_refuses_persistence(self):
        store = create_store("minidb")
        try:
            assert not store.supports_persistence()
            with pytest.raises(PersistenceUnsupportedError):
                store.content_fingerprint()
        finally:
            store.close()


class TestCatalogRegistration:
    def test_add_graph_records_entry(self, catalog_dir):
        graph = grid_graph(4, 4, seed=5)
        db_path = _build_cold_session(catalog_dir, graph, lthd=5.0)
        catalog = Catalog(catalog_dir)
        entry = catalog.get("social")
        assert entry.backend == "sqlite"
        # The db file lives inside the catalog dir, so the manifest stores
        # it relative (the catalog is relocatable as a unit).
        assert entry.db_path == os.path.basename(db_path)
        assert catalog.resolve_db_path(entry) == db_path
        assert entry.num_nodes == graph.num_nodes
        assert entry.num_edges == graph.num_edges
        assert entry.fingerprint == fingerprint_graph(graph)
        assert entry.statistics is not None
        assert entry.statistics.num_nodes == graph.num_nodes
        assert entry.segtable is not None
        assert entry.segtable.lthd == 5.0
        assert entry.segtable.build is not None
        assert entry.segtable.build.encoding_number > 0

    def test_in_memory_graphs_are_not_cataloged(self, catalog_dir):
        with PathService(catalog_path=catalog_dir) as service:
            service.add_graph("mem", grid_graph(3, 3, seed=1),
                              backend="sqlite")  # no db_path
            service.add_graph("mini", grid_graph(3, 3, seed=1),
                              backend="minidb")
        assert len(Catalog(catalog_dir)) == 0

    def test_persist_false_opts_out(self, catalog_dir, tmp_path):
        with PathService(catalog_path=catalog_dir) as service:
            service.add_graph("g", grid_graph(3, 3, seed=1),
                              backend="sqlite",
                              db_path=str(tmp_path / "g.db"),
                              persist=False)
        assert len(Catalog(catalog_dir)) == 0

    def test_cwd_relative_db_path_survives_cwd_change(self, tmp_path,
                                                      monkeypatch):
        # A db_path relative to the *cwd* must be normalized at
        # registration; resolving it against the catalog dir later (from a
        # different cwd) has to find the same file.
        monkeypatch.chdir(tmp_path)
        with PathService(catalog_path="cat") as service:
            service.add_graph("g", grid_graph(3, 3, seed=1),
                              backend="sqlite",
                              db_path=os.path.join("cat", "g.db"))
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        with PathService.open(str(tmp_path / "cat")) as warm:
            assert warm.graphs() == ("g",)

    def test_catalog_directory_is_relocatable(self, tmp_path):
        source = str(tmp_path / "cat")
        _build_cold_session(source, grid_graph(3, 3, seed=1))
        moved = str(tmp_path / "moved")
        os.rename(source, moved)
        with PathService.open(moved) as warm:
            assert warm.graphs() == ("social",)
            assert warm.segtable_builds == 0

    def test_manifest_round_trips_through_json(self, catalog_dir):
        _build_cold_session(catalog_dir, grid_graph(3, 3, seed=2))
        manifest_path = os.path.join(catalog_dir, "manifest.json")
        manifest = load_manifest(manifest_path)
        entry = manifest.entries["social"]
        reparsed = load_manifest(manifest_path).entries["social"]
        assert reparsed == entry
        # The document itself is plain JSON with a version stamp.
        with open(manifest_path, encoding="utf-8") as handle:
            raw = json.load(handle)
        assert raw["format_version"] == 1

    def test_unsupported_manifest_version_raises(self, catalog_dir):
        os.makedirs(catalog_dir)
        manifest_path = os.path.join(catalog_dir, "manifest.json")
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump({"format_version": 99, "graphs": {}}, handle)
        with pytest.raises(ManifestError, match="version"):
            Catalog(catalog_dir)


class TestWarmStart:
    def test_round_trip_bit_identical_and_zero_rebuilds(self, catalog_dir,
                                                        query_rng):
        graph = power_law_graph(100, edges_per_node=2, seed=11)
        nodes = sorted(graph.nodes())
        queries = [(query_rng.choice(nodes), query_rng.choice(nodes))
                   for _ in range(12)]
        db_path = os.path.join(catalog_dir, "social.db")
        with PathService(catalog_path=catalog_dir) as service:
            service.add_graph("social", graph, backend="sqlite",
                              db_path=db_path)
            cold_build = service.build_segtable("social", lthd=4.0)
            cold = service.shortest_path_many(queries, graph="social")
            cold_shapes = _shapes(cold)
            assert service.segtable_builds == 1
        # "Kill" the service (closed above), then warm-start a new one.
        with PathService.open(catalog_dir) as warm:
            assert warm.graphs() == ("social",)
            # SegTable adopted, not rebuilt; persisted stats rehydrated.
            assert warm.segtable_builds == 0
            stats = warm.segtable_stats("social")
            assert stats is not None
            assert stats.encoding_number == cold_build.encoding_number
            assert warm.store("social").has_segtable
            # Planner statistics came from the manifest (no rescan needed);
            # auto planning picks BSEG immediately.
            plan = warm.explain(queries[0][0], queries[0][1], graph="social")
            assert plan.method == "BSEG"
            warm_batch = warm.shortest_path_many(queries, graph="social")
            assert _shapes(warm_batch) == cold_shapes
            # Still zero constructions in this process...
            assert warm.segtable_builds == 0
            # ...even after an explicit build with the persisted parameters
            # (the memo key — name, params, fingerprint — matches).
            memoized = warm.build_segtable("social", lthd=4.0)
            assert warm.segtable_builds == 0
            assert memoized.encoding_number == cold_build.encoding_number

    def test_warm_statistics_match_cold(self, catalog_dir):
        graph = grid_graph(5, 5, seed=7)
        _build_cold_session(catalog_dir, graph)
        with PathService.open(catalog_dir) as warm:
            warm_stats = warm.statistics("social")
            assert warm_stats.num_nodes == graph.num_nodes
            assert warm_stats.num_edges == graph.num_edges
            assert warm_stats.degree_histogram  # int keys survived JSON
            assert all(isinstance(k, int)
                       for k in warm_stats.degree_histogram)

    def test_concurrent_reattach_through_store_pool(self, catalog_dir,
                                                    query_rng):
        graph = power_law_graph(120, edges_per_node=2, seed=13)
        nodes = sorted(graph.nodes())
        queries = [(query_rng.choice(nodes), query_rng.choice(nodes))
                   for _ in range(24)]
        _build_cold_session(catalog_dir, graph, lthd=4.0)
        with PathService.open(catalog_dir, cache_size=0) as warm:
            serial = warm.shortest_path_many(queries, graph="social")
            parallel = warm.shortest_path_many(queries, graph="social",
                                               concurrency=4)
            assert _shapes(parallel) == _shapes(serial)
            pool = warm.pool_stats("social")
            # The pool grew by cloning connections over the db_path file.
            assert pool.replicas_cloned >= 1
            assert pool.replicas_rehydrated == 0
            assert warm.segtable_builds == 0

    def test_warm_attach_rehydrates_segtable_without_clone(self,
                                                           catalog_dir,
                                                           query_rng,
                                                           monkeypatch):
        """A persistence-capable backend without a clone() fast path must
        still serve BSEG from rehydrated pool replicas after a warm
        attach (segment rows are captured at attach time)."""
        from repro.core.store.sqlite import SQLiteGraphStore
        from repro.errors import StoreCloneUnsupportedError

        graph = power_law_graph(80, edges_per_node=2, seed=17)
        nodes = sorted(graph.nodes())
        queries = [(query_rng.choice(nodes), query_rng.choice(nodes))
                   for _ in range(12)]
        _build_cold_session(catalog_dir, graph, lthd=4.0)

        def no_clone(self):
            raise StoreCloneUnsupportedError("clone disabled for this test")

        monkeypatch.setattr(SQLiteGraphStore, "supports_clone",
                            lambda self: False)
        monkeypatch.setattr(SQLiteGraphStore, "clone", no_clone)
        with PathService.open(catalog_dir, cache_size=0) as warm:
            serial = warm.shortest_path_many(queries, graph="social",
                                             method="BSEG")
            parallel = warm.shortest_path_many(queries, graph="social",
                                               method="BSEG", concurrency=3)
            assert _shapes(parallel) == _shapes(serial)
            pool = warm.pool_stats("social")
            assert pool.replicas_rehydrated >= 1
            assert pool.replicas_cloned == 0
            assert warm.segtable_builds == 0

    def test_attach_into_existing_service(self, catalog_dir):
        _build_cold_session(catalog_dir, grid_graph(4, 4, seed=9))
        with PathService(catalog_path=catalog_dir) as service:
            assert service.graphs() == ()
            service.attach_graph("social")
            assert service.graphs() == ("social",)
            with pytest.raises(DuplicateGraphError):
                service.attach_graph("social")

    def test_attach_unknown_name_raises(self, catalog_dir):
        with PathService(catalog_path=catalog_dir) as service:
            with pytest.raises(CatalogEntryNotFoundError):
                service.attach_graph("nope")

    def test_open_without_catalog_dir_creates_empty(self, catalog_dir):
        with PathService.open(catalog_dir) as service:
            assert service.graphs() == ()


class TestInvalidation:
    def test_fingerprint_mismatch_marks_stale_and_raises(self, catalog_dir):
        db_path = _build_cold_session(catalog_dir, grid_graph(4, 4, seed=2))
        # The graph changes underneath the catalog entry.
        connection = sqlite3.connect(db_path)
        connection.execute(
            "INSERT INTO TEdges (fid, tid, cost) VALUES (0, 15, 0.25)")
        connection.commit()
        connection.close()
        with PathService(catalog_path=catalog_dir) as service:
            with pytest.raises(FingerprintMismatchError, match="rebuild"):
                service.attach_graph("social")
            # The entry is now stale: attaching again fails fast, before
            # touching the database.
            with pytest.raises(FingerprintMismatchError, match="stale"):
                service.attach_graph("social")
        assert Catalog(catalog_dir).get("social").stale

    def test_open_strict_false_skips_bad_entries(self, catalog_dir,
                                                 tmp_path):
        _build_cold_session(catalog_dir, grid_graph(4, 4, seed=2))
        db_path = os.path.join(catalog_dir, "gone.db")
        with PathService(catalog_path=catalog_dir) as service:
            service.add_graph("gone", grid_graph(3, 3, seed=1),
                              backend="sqlite", db_path=db_path)
        os.remove(db_path)
        with pytest.raises(ManifestError):
            PathService.open(catalog_dir)
        with PathService.open(catalog_dir, strict=False) as service:
            assert service.graphs() == ("social",)

    def test_rebuild_recovers_stale_entry(self, catalog_dir):
        db_path = _build_cold_session(catalog_dir, grid_graph(4, 4, seed=2),
                                      lthd=5.0)
        connection = sqlite3.connect(db_path)
        connection.execute(
            "INSERT INTO TEdges (fid, tid, cost) VALUES (0, 15, 0.25)")
        connection.commit()
        connection.close()
        catalog = Catalog(catalog_dir)
        catalog.mark_stale("social")
        refreshed = catalog.rebuild("social")
        assert not refreshed.stale
        assert refreshed.segtable is not None
        assert refreshed.segtable.lthd == 5.0
        # The refreshed entry attaches cleanly and sees the new edge.
        with PathService.open(catalog_dir) as warm:
            assert warm.graph("social").has_edge(0, 15)
            result = warm.shortest_path(0, 15, graph="social")
            assert result.distance == pytest.approx(0.25)

    def test_gc_drops_missing_and_stale(self, catalog_dir):
        db_path = _build_cold_session(catalog_dir, grid_graph(3, 3, seed=4),
                                      name="a")
        _build_cold_session(catalog_dir, grid_graph(3, 3, seed=5), name="b")
        catalog = Catalog(catalog_dir)
        os.remove(db_path)
        assert catalog.gc() == ("a",)
        catalog.mark_stale("b")
        assert catalog.gc() == ()  # stale-but-present survives plain gc
        assert catalog.gc(remove_stale=True) == ("b",)
        assert catalog.names() == ()


class TestMemoizationKeying:
    def test_reregistered_graph_never_serves_stale_memo(self,
                                                        small_grid_graph):
        """Satellite fix: the memo key carries the content fingerprint, so
        a different graph re-registered under a reused name rebuilds."""
        with PathService() as service:
            service.add_graph("g", small_grid_graph)
            first = service.build_segtable("g", lthd=5)
            service.drop_graph("g")
            other = grid_graph(5, 5, seed=99)
            service.add_graph("g", other)
            second = service.build_segtable("g", lthd=5)
            assert second is not first
            assert service.segtable_builds == 2

    def test_same_content_same_key(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("g", small_grid_graph)
            first = service.build_segtable("g", lthd=5)
            second = service.build_segtable("g", lthd=5)
            assert second is first
            assert service.segtable_builds == 1


class TestCatalogCLI:
    def test_list_inspect_rebuild_gc(self, catalog_dir, capsys):
        db_path = _build_cold_session(catalog_dir, grid_graph(4, 4, seed=6),
                                      lthd=5.0)
        assert catalog_main(["list", "--catalog", catalog_dir]) == 0
        out = capsys.readouterr().out
        assert "social" in out and "sqlite" in out

        assert catalog_main(["inspect", "--catalog", catalog_dir,
                             "social"]) == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["name"] == "social"
        assert entry["segtable"]["lthd"] == 5.0

        assert catalog_main(["rebuild", "--catalog", catalog_dir,
                             "social", "--lthd", "6"]) == 0
        assert "rebuilt 'social'" in capsys.readouterr().out
        assert Catalog(catalog_dir).get("social").segtable.lthd == 6.0

        os.remove(db_path)
        assert catalog_main(["gc", "--catalog", catalog_dir]) == 0
        assert "social" in capsys.readouterr().out
        assert len(Catalog(catalog_dir)) == 0

    def test_inspect_unknown_name_exits_nonzero(self, catalog_dir, capsys):
        os.makedirs(catalog_dir)
        assert catalog_main(["inspect", "--catalog", catalog_dir,
                             "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_list_empty_catalog(self, catalog_dir, capsys):
        os.makedirs(catalog_dir)
        assert catalog_main(["list", "--catalog", catalog_dir]) == 0
        assert "empty" in capsys.readouterr().out

    def test_mistyped_catalog_path_errors_not_creates(self, tmp_path,
                                                      capsys):
        missing = str(tmp_path / "cataog")  # typo
        assert catalog_main(["list", "--catalog", missing]) == 1
        assert "no catalog directory" in capsys.readouterr().err
        assert not os.path.exists(missing)


class TestCrossProcessSafety:
    def test_mutations_merge_with_on_disk_writes(self, catalog_dir,
                                                 tmp_path):
        """Two services bound to one catalog must not erase each other's
        registrations: every mutation re-reads the manifest first."""
        with PathService(catalog_path=catalog_dir) as a, \
                PathService(catalog_path=catalog_dir) as b:
            # Both catalogs parsed the (empty) manifest at bind time.
            a.add_graph("from_a", grid_graph(3, 3, seed=1),
                        backend="sqlite",
                        db_path=str(tmp_path / "a.db"))
            b.add_graph("from_b", grid_graph(3, 3, seed=2),
                        backend="sqlite",
                        db_path=str(tmp_path / "b.db"))
            # b's write merged into the document a already wrote.
            assert Catalog(catalog_dir).names() == ("from_a", "from_b")
            # A segtable update through a does not drop b's entry either.
            a.build_segtable("from_a", lthd=4)
            assert Catalog(catalog_dir).names() == ("from_a", "from_b")
