"""Deterministic fault injection: plan semantics, the three seam
installers, and the wire-garbage regression on the fallback DB-API
server (every way a peer can hand the client garbage must normalize to
``InterfaceError``, which the generic DB-API store maps to
:class:`~repro.errors.BackendConnectionError`)."""

import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    BackendConnectionError,
    InvalidQueryError,
    ShardUnavailableError,
)
from repro.faults import (
    KIND_ERROR,
    KIND_LATENCY,
    STORE_STATEMENT_METHODS,
    FaultPlan,
    FaultSpec,
    drop_at,
    flaky,
    install_client_faults,
    install_connection_faults,
    install_store_faults,
    slow,
    uninstall_faults,
)
from repro.graph.generators import power_law_graph
from repro.service import PathService

GRAPH = power_law_graph(50, edges_per_node=2, seed=3)


# -- FaultSpec / FaultPlan semantics ------------------------------------------


class TestFaultSpec:
    def test_helpers_build_the_right_kinds(self):
        assert drop_at(3).kind == KIND_ERROR
        assert drop_at(3).at_op == 3
        assert flaky(2).times == 2
        assert flaky(2, probability=0.5).probability == 0.5
        assert slow(0.01).kind == KIND_LATENCY
        assert slow(0.01).times is None

    @pytest.mark.parametrize("bad", [
        dict(kind="panic"),
        dict(at_op=0),
        dict(probability=1.5),
        dict(probability=-0.1),
        dict(times=0),
        dict(latency_s=-1.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(InvalidQueryError):
            FaultSpec(**bad)


class TestFaultPlan:
    def test_seeded_plans_replay_identically(self):
        def schedule(seed):
            plan = FaultPlan([FaultSpec(probability=0.3, times=None)],
                             seed=seed)
            for _ in range(100):
                plan.before("op")
            return plan.log

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_at_op_counts_eligible_ops_only(self):
        plan = FaultPlan([drop_at(1, match="expand")], seed=0)
        assert plan.before("store.reset_visited") is None
        assert plan.before("store.insert_visited") is None
        fired = plan.before("store.expand")
        assert fired is not None and fired.kind == KIND_ERROR
        assert plan.before("store.expand") is None, "at_op fires once"

    def test_times_bounds_firing_then_recovers(self):
        plan = FaultPlan([flaky(2)], seed=0)
        outcomes = [plan.before("op") is not None for _ in range(5)]
        assert outcomes == [True, True, False, False, False]
        assert plan.fired == 2
        assert plan.ops == 5

    def test_latency_fault_sleeps(self):
        plan = FaultPlan([slow(0.05)], seed=0)
        started = time.monotonic()
        assert plan.before("op") is None, "latency faults do not raise"
        assert time.monotonic() - started >= 0.045
        assert plan.fired == 1

    def test_as_dict_summarizes(self):
        plan = FaultPlan([flaky(1), slow(0.0)], seed=0)
        plan.before("op")
        summary = plan.as_dict()
        assert summary["ops"] == 1
        assert summary["fired"] == 2
        assert summary["per_spec"] == [1, 1]


# -- the store seam (backend-generic) -----------------------------------------


class TestStoreSeam:
    def test_drop_mid_fem_raises_typed_error(self, test_backend):
        with PathService(default_backend=test_backend.name,
                         cache_size=0) as service:
            service.add_graph("g", GRAPH, backend=test_backend.name,
                              db_path=test_backend.make_path())
            store = service.store("g")
            install_store_faults(store, FaultPlan([drop_at(7)], seed=0))
            with pytest.raises(BackendConnectionError, match="injected"):
                service.shortest_path(0, 23, graph="g")
            uninstall_faults(store)
            result = service.shortest_path(0, 23, graph="g")
            assert result.distance is not None

    def test_match_targets_one_statement(self, test_backend):
        with PathService(default_backend=test_backend.name,
                         cache_size=0) as service:
            service.add_graph("g", GRAPH, backend=test_backend.name,
                              db_path=test_backend.make_path())
            store = service.store("g")
            install_store_faults(
                store, FaultPlan([drop_at(1, match="expand")], seed=0))
            with pytest.raises(BackendConnectionError, match="expand"):
                service.shortest_path(0, 23, graph="g")

    def test_flaky_store_recovers(self, test_backend):
        with PathService(default_backend=test_backend.name,
                         cache_size=0) as service:
            service.add_graph("g", GRAPH, backend=test_backend.name,
                              db_path=test_backend.make_path())
            plan = FaultPlan([flaky(1)], seed=0)
            install_store_faults(service.store("g"), plan)
            with pytest.raises(BackendConnectionError):
                service.shortest_path(0, 23, graph="g")
            result = service.shortest_path(0, 23, graph="g")
            assert result.distance is not None
            assert plan.fired == 1

    def test_statement_surface_matches_the_abc(self):
        from repro.core.store.base import GraphStore
        for name in STORE_STATEMENT_METHODS:
            assert callable(getattr(GraphStore, name, None)), \
                f"{name} is not a GraphStore method"


# -- the client seam ----------------------------------------------------------


@pytest.fixture
def served(tmp_path):
    import os
    from repro.serve import ShardServer
    catalog = str(tmp_path / "cat")
    with PathService(catalog_path=catalog) as seeder:
        seeder.add_graph("g", GRAPH, backend="sqlite",
                         db_path=os.path.join(catalog, "g.db"))
    service = PathService.open(catalog, shard_id="srv")
    with ShardServer(service, port=0, own_service=True) as server:
        yield server


class TestClientSeam:
    def test_retries_absorb_flaky_faults(self, served):
        from repro.serve import ShardClient
        from repro.service.planner import QuerySpec
        client = ShardClient(served.url, retries=3, backoff_seed=1)
        plan = FaultPlan([flaky(2)], seed=0)
        install_client_faults(client, plan)
        result = client.shortest_path(QuerySpec(source=0, target=23,
                                                graph="g"))
        assert result.distance is not None
        assert plan.fired == 2

    def test_exhausted_retries_surface_the_typed_error(self, served):
        from repro.serve import ShardClient
        from repro.service.planner import QuerySpec
        client = ShardClient(served.url, retries=1, backoff_seed=1)
        install_client_faults(client, FaultPlan([flaky(99)], seed=0))
        with pytest.raises(ShardUnavailableError, match="injected"):
            client.shortest_path(QuerySpec(source=0, target=23, graph="g"))
        uninstall_faults(client)
        result = client.shortest_path(QuerySpec(source=0, target=23,
                                                graph="g"))
        assert result.distance is not None


# -- the fallback wire seam + garbage regression ------------------------------


class TestFallbackSeam:
    def test_injected_drop_severs_the_connection(self):
        from repro.store.fallback_server import (
            FallbackConnection,
            InterfaceError,
            serve_in_thread,
        )
        from urllib.parse import urlsplit
        handle = serve_in_thread()
        try:
            parts = urlsplit(handle.dsn.replace("fallback://", "http://"))
            conn = FallbackConnection(parts.hostname, parts.port)
            install_connection_faults(conn, FaultPlan([drop_at(2)], seed=0))
            cursor = conn.cursor()
            cursor.execute("CREATE TABLE chaos_t (a INTEGER)")
            with pytest.raises(InterfaceError, match="injected"):
                cursor.execute("INSERT INTO chaos_t VALUES (1)")
            with pytest.raises(InterfaceError):
                conn.cursor().execute("SELECT 1")  # severed for real
        finally:
            handle.close()


def _garbage_server(frames):
    """A TCP server that answers every connection's hello with the given
    raw byte strings, then closes.  Returns ``(host, port, closer)``."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(4)
    host, port = listener.getsockname()
    done = threading.Event()

    def serve():
        while not done.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            with conn:
                for frame in frames:
                    try:
                        conn.sendall(frame)
                    except OSError:
                        break

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()

    def closer():
        done.set()
        listener.close()
        thread.join(timeout=5.0)

    return host, port, closer


def _framed(payload):
    return struct.pack(">I", len(payload)) + payload


class TestWireGarbageRegression:
    """Satellite regression: garbled wire bytes must surface as the
    DB-API ``InterfaceError`` (mapped to ``BackendConnectionError`` by
    the generic store), never as a leaked ``UnicodeDecodeError`` /
    ``JSONDecodeError`` / ``struct.error``."""

    def _connect_expecting_interface_error(self, frames):
        from repro.store.fallback_server import (
            FallbackConnection,
            InterfaceError,
        )
        host, port, closer = _garbage_server(frames)
        try:
            with pytest.raises(InterfaceError):
                FallbackConnection(host, port, timeout=5.0)
        finally:
            closer()

    def test_invalid_utf8_hello(self):
        self._connect_expecting_interface_error(
            [_framed(b"\xff\xfe\xfd\xfc")])

    def test_malformed_json_hello(self):
        self._connect_expecting_interface_error(
            [_framed(b"{not json at all")])

    def test_truncated_header_then_close(self):
        self._connect_expecting_interface_error([b"\x00\x00"])

    def test_mid_frame_disconnect(self):
        # Header promises 100 bytes; only 10 arrive before the close.
        self._connect_expecting_interface_error(
            [struct.pack(">I", 100) + b"0123456789"])

    def test_dbapi_store_maps_garbage_to_backend_connection_error(
            self, fresh_dsn):
        """End to end through the generic DB-API store: a connection
        severed mid-query surfaces as ``BackendConnectionError``."""
        with PathService(default_backend="dbapi", cache_size=0) as service:
            service.add_graph("g", GRAPH, backend="dbapi",
                              db_path=fresh_dsn())
            store = service.store("g")
            # Sever the store's live wire connection out from under it.
            store.connection._sock.close()
            with pytest.raises(BackendConnectionError):
                service.shortest_path(0, 23, graph="g")


# -- uninstall ----------------------------------------------------------------


def test_uninstall_is_safe_on_clean_objects():
    class Thing:
        pass

    uninstall_faults(Thing())  # no installer ever touched it: no-op


def test_stacked_installs_unwind_in_reverse():
    class Probe:
        def ping(self):
            return "real"

    probe = Probe()
    install_store_faults(probe, FaultPlan([flaky(99)], seed=0),
                         methods=("ping",))
    install_store_faults(probe, FaultPlan([], seed=0), methods=("ping",))
    with pytest.raises(BackendConnectionError):
        probe.ping()
    uninstall_faults(probe)
    assert probe.ping() == "real"
