"""Tests for the generic FEM framework and its non-shortest-path uses."""

import heapq

import pytest

from repro.core.fem import FEMRunStats, FEMSearch, FEMSpec
from repro.core.prim import prim_mst_fem
from repro.core.reachability import is_reachable_fem, reachable_set_fem
from repro.errors import InvalidQueryError
from repro.graph.generators import grid_graph, power_law_graph, random_graph
from repro.graph.model import Graph
from repro.graph.stats import reachable_set_size
from repro.rdb.engine import Database
from repro.rdb.merge import merge_into
from repro.rdb.schema import Column
from repro.rdb.types import INTEGER


def reference_prim_weight(graph: Graph, root: int) -> float:
    """Classic in-memory Prim over the undirected view of the graph."""
    adjacency = {}
    for edge in graph.edges():
        adjacency.setdefault(edge.fid, []).append((edge.tid, edge.cost))
    visited = {root}
    heap = [(cost, neighbor) for neighbor, cost in adjacency.get(root, [])]
    heapq.heapify(heap)
    total = 0.0
    while heap:
        cost, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        total += cost
        for neighbor, weight in adjacency.get(node, []):
            if neighbor not in visited:
                heapq.heappush(heap, (weight, neighbor))
    return total


class TestFEMFramework:
    def test_requires_initial_rows(self):
        db = Database()
        table = db.create_table("V", [Column("nid", INTEGER), Column("f", INTEGER)])
        spec = FEMSpec(
            name="empty",
            initialize=lambda: [],
            select_frontier=lambda table, k: [],
            expand=lambda frontier, k: [],
            merge=lambda table, rows, k: merge_into(table, rows, "nid", "nid"),
        )
        with pytest.raises(InvalidQueryError):
            FEMSearch(table, spec).run()
        db.close()

    def test_simple_counting_search(self):
        """A FEM loop that visits the integers 0..4 one hop at a time."""
        db = Database()
        table = db.create_table("V", [Column("nid", INTEGER), Column("f", INTEGER)])
        table.create_index("nid", unique=True)

        def select(table, _k):
            frontier = [row for row in table.scan() if row["f"] == 0]
            table.update_where(lambda row: row["f"] == 0, lambda row: {"f": 1})
            return frontier

        def expand(frontier, _k):
            return [{"nid": row["nid"] + 1, "f": 0}
                    for row in frontier if row["nid"] < 4]

        spec = FEMSpec(
            name="count",
            initialize=lambda: [{"nid": 0, "f": 0}],
            select_frontier=select,
            expand=expand,
            merge=lambda table, rows, _k: merge_into(
                table, rows, "nid", "nid",
                not_matched_insert=lambda source: dict(source),
            ),
            max_iterations=10,
        )
        search = FEMSearch(table, spec)
        stats = search.run()
        assert isinstance(stats, FEMRunStats)
        assert {row["nid"] for row in search.visited_rows()} == {0, 1, 2, 3, 4}
        assert stats.iterations >= 5
        db.close()


class TestPrimViaFEM:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_reference_prim_on_grids(self, seed):
        graph = grid_graph(4, 4, seed=seed)
        result = prim_mst_fem(graph, root=0)
        assert result.total_weight == pytest.approx(reference_prim_weight(graph, 0))
        assert len(result.edges) == graph.num_nodes - 1

    def test_matches_reference_on_power_graph(self):
        graph = power_law_graph(60, edges_per_node=2, seed=5)
        result = prim_mst_fem(graph, root=0)
        assert result.total_weight == pytest.approx(reference_prim_weight(graph, 0))

    def test_tree_edges_exist_in_graph(self):
        graph = grid_graph(3, 3, seed=7)
        result = prim_mst_fem(graph, root=0)
        for parent, child, weight in result.edges:
            assert graph.edge_cost(parent, child) is not None

    def test_empty_graph_rejected(self):
        with pytest.raises(InvalidQueryError):
            prim_mst_fem(Graph())

    def test_disconnected_graph_rejected(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 0, 1.0)
        graph.add_edge(5, 6, 1.0)
        graph.add_edge(6, 5, 1.0)
        with pytest.raises(InvalidQueryError):
            prim_mst_fem(graph, root=0)


class TestReachabilityViaFEM:
    def test_matches_bfs_reachability(self):
        graph = random_graph(80, avg_degree=1.5, seed=4)
        source = 0
        expected_size = reachable_set_size(graph, source)
        reached = reachable_set_fem(graph, source)
        assert len(reached) == expected_size

    def test_is_reachable(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_node(9)
        assert is_reachable_fem(graph, 0, 2)
        assert not is_reachable_fem(graph, 0, 9)

    def test_directed_reachability(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        assert is_reachable_fem(graph, 0, 1)
        assert not is_reachable_fem(graph, 1, 0)
