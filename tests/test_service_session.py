"""Tests for PathService: multi-graph hosting, lifecycle, caching, memoization."""

import pytest

from repro.core.store.minidb import MiniDBGraphStore
from repro.core.store.sqlite import SQLiteGraphStore
from repro.errors import (
    DuplicateGraphError,
    InvalidQueryError,
    NodeNotFoundError,
    UnknownGraphError,
)
from repro.graph.generators import grid_graph, path_graph, power_law_graph
from repro.memory.dijkstra import dijkstra_shortest_path
from repro.service import PathService, Session


class TestGraphHosting:
    def test_multi_graph_hosting(self):
        with PathService() as service:
            service.add_graph("path", path_graph(6, weight_range=(2, 2)))
            service.add_graph("grid", grid_graph(3, 3, seed=1),
                              backend="sqlite")
            assert service.graphs() == ("path", "grid")
            assert service.shortest_path(0, 5, graph="path").distance == 10
            expected = dijkstra_shortest_path(service.graph("grid"), 0, 8).distance
            assert service.shortest_path(0, 8, graph="grid").distance == expected

    def test_backend_per_graph(self):
        with PathService() as service:
            service.add_graph("a", path_graph(3), backend="minidb")
            service.add_graph("b", path_graph(3), backend="sqlite")
            assert isinstance(service.store("a"), MiniDBGraphStore)
            assert isinstance(service.store("b"), SQLiteGraphStore)

    def test_duplicate_graph_name_raises(self):
        with PathService() as service:
            service.add_graph("g", path_graph(3))
            with pytest.raises(DuplicateGraphError):
                service.add_graph("g", path_graph(4))

    def test_unknown_graph_raises(self):
        with PathService() as service:
            with pytest.raises(UnknownGraphError):
                service.shortest_path(0, 1, graph="nope")

    def test_drop_graph(self):
        with PathService() as service:
            service.add_graph("g", path_graph(4, weight_range=(1, 1)))
            service.shortest_path(0, 3, graph="g")
            service.drop_graph("g")
            assert service.graphs() == ()
            with pytest.raises(UnknownGraphError):
                service.shortest_path(0, 3, graph="g")
            # Re-adding under the same name works and serves fresh results.
            service.add_graph("g", path_graph(4, weight_range=(2, 2)))
            assert service.shortest_path(0, 3, graph="g",
                                         use_cache=False).distance == 6

    def test_node_validation(self):
        with PathService() as service:
            service.add_graph("g", path_graph(3))
            with pytest.raises(NodeNotFoundError):
                service.shortest_path(0, 99, graph="g")
            # In-memory methods validate identically.
            with pytest.raises(NodeNotFoundError):
                service.shortest_path(0, 99, graph="g", method="MDJ")

    def test_unknown_method(self):
        with PathService() as service:
            service.add_graph("g", path_graph(3))
            with pytest.raises(InvalidQueryError):
                service.shortest_path(0, 2, graph="g", method="ASTAR")

    def test_session_alias(self):
        assert Session is PathService

    def test_close_is_idempotent(self):
        service = PathService()
        service.add_graph("g", path_graph(3))
        service.close()
        service.close()

    def test_statistics_memoized(self):
        with PathService() as service:
            service.add_graph("g", grid_graph(3, 3, seed=1))
            assert service.statistics("g") is service.statistics("g")
            assert service.statistics("g").num_nodes == 9


class TestSegTableMemoization:
    def test_same_parameters_reuse_build(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            first = service.build_segtable(lthd=5)
            second = service.build_segtable(lthd=5)
            assert second is first

    def test_different_lthd_rebuilds(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            first = service.build_segtable(lthd=5)
            second = service.build_segtable(lthd=8)
            assert second is not first
            assert service.segtable_stats() is second

    def test_force_rebuilds(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            first = service.build_segtable(lthd=5)
            second = service.build_segtable(lthd=5, force=True)
            assert second is not first

    def test_segtable_stats_none_until_built(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            assert service.segtable_stats() is None

    def test_bseg_runs_after_build(self, small_grid_graph):
        expected = dijkstra_shortest_path(small_grid_graph, 0, 24).distance
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            service.build_segtable(lthd=10)
            result = service.shortest_path(0, 24, method="BSEG")
            assert abs(result.distance - expected) < 1e-6


class TestResultCache:
    def test_repeat_query_hits_cache(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            first = service.shortest_path(0, 24)
            info = service.cache_info()
            assert info.hits == 0 and info.misses == 1
            second = service.shortest_path(0, 24)
            info = service.cache_info()
            assert info.hits == 1
            # A hit replays the one execution's record in a fresh result
            # object, so callers cannot corrupt the cache.
            assert second.stats is not first.stats
            assert second.stats.total_time == first.stats.total_time
            assert second.stats.expansions == first.stats.expansions
            assert second.path == first.path

    def test_cache_hit_is_mutation_safe(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            first = service.shortest_path(0, 24)
            expected = list(first.path)
            expected_time = first.stats.total_time
            first.path.reverse()  # a careless caller mutates the result...
            first.stats.total_time = 999.0  # ...and its stats
            second = service.shortest_path(0, 24)
            assert second.path == expected
            assert second.stats.total_time == expected_time

    def test_use_cache_false_bypasses(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            first = service.shortest_path(0, 24, use_cache=False)
            second = service.shortest_path(0, 24, use_cache=False)
            assert second is not first
            assert service.cache_info().hits == 0

    def test_methods_cached_separately(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            a = service.shortest_path(0, 24, method="BDJ")
            b = service.shortest_path(0, 24, method="BSDJ")
            assert a.distance == b.distance
            assert service.cache_info().misses == 2

    def test_auto_and_explicit_share_entries(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            auto_plan = service.explain(0, 24)
            service.shortest_path(0, 24, method="auto")
            service.shortest_path(0, 24, method=auto_plan.method)
            assert service.cache_info().hits == 1

    def test_max_iterations_never_cached(self, small_grid_graph):
        from repro.errors import PathNotFoundError
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            try:
                service.shortest_path(0, 24, method="BDJ", max_iterations=1)
            except PathNotFoundError:
                pass
            info = service.cache_info()
            assert info.misses == 0 and info.size == 0

    def test_clear_cache(self, small_grid_graph):
        with PathService() as service:
            service.add_graph("default", small_grid_graph)
            service.shortest_path(0, 24)
            service.clear_cache()
            assert service.cache_info().size == 0

    def test_zero_capacity_disables_caching(self, small_grid_graph):
        with PathService(cache_size=0) as service:
            service.add_graph("default", small_grid_graph)
            first = service.shortest_path(0, 24)
            second = service.shortest_path(0, 24)
            assert second is not first
            assert service.cache_info().size == 0

    def test_lru_eviction(self, small_grid_graph):
        with PathService(cache_size=2) as service:
            service.add_graph("default", small_grid_graph)
            service.shortest_path(0, 10)
            service.shortest_path(0, 11)
            service.shortest_path(0, 12)  # evicts (0, 10)
            info = service.cache_info()
            assert info.size == 2
            assert info.evictions == 1
            service.shortest_path(0, 10)  # miss again
            assert service.cache_info().hits == 0


class TestClosedService:
    def test_add_graph_after_close_rejected(self):
        from repro.errors import ServiceError
        service = PathService()
        service.close()
        with pytest.raises(ServiceError):
            service.add_graph("g", path_graph(3))

    def test_disabled_cache_reports_no_misses(self, small_grid_graph):
        # capacity 0 must not report misses-then-cached for queries that
        # were never cached; a duplicate pair inside one batch is still
        # deduplicated (single-flight replay), not re-executed serially.
        with PathService(cache_size=0) as service:
            service.add_graph("default", small_grid_graph)
            batch = service.shortest_path_many([(0, 24), (0, 24)])
            assert batch.stats.cache_misses == 0
            assert batch.stats.cache_hits == 0
            assert batch.stats.executed == 1
            assert batch.stats.single_flight_hits == 1
            assert batch.results[0] is not None
            assert batch.results[1] is not None
            assert batch.results[0].distance == batch.results[1].distance
            assert batch.results[0].path == batch.results[1].path
            info = service.cache_info()
            assert info.misses == 0 and info.hits == 0
