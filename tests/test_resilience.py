"""The resilience layer: end-to-end deadlines at every tier, admission
control with typed load sheds, seedable jittered backoff, and the
shutdown accounting on :class:`~repro.serve.ShardServer.close`.

Deadline-expiry coverage walks the stages a budget crosses: the spec
(validation), the planner/service (pool wait, FEM iteration checks,
batch siblings), and the serve wire (client-local expiry, server-side
raw-budget rejection, remaining-budget clamping, positional batch
errors over HTTP).  Backend-generic pieces run under the
``REPRO_TEST_BACKEND`` matrix via the ``test_backend`` fixture.
"""

import os
import threading
import time

import pytest

from repro.core.deadline import (
    check_deadline,
    deadline_from_timeout,
    expired,
    remaining_budget,
)
from repro.errors import (
    DeadlineExceededError,
    InvalidQueryError,
    ServerOverloadedError,
    ShardUnavailableError,
)
from repro.graph.generators import power_law_graph
from repro.serve import ShardClient, ShardServer
from repro.serve.client import BACKOFF_SECONDS
from repro.serve.server import SHUTDOWN_JOIN_TIMEOUT
from repro.serve.protocol import spec_to_dict
from repro.service import PathService
from repro.service.batch import execute_batch
from repro.service.planner import QuerySpec

GRAPH = power_law_graph(80, edges_per_node=2, seed=9)
TINY = 1e-9
"""A budget that is arithmetically positive but has always already
expired by the time anything checks it."""


# -- the deadline primitive ---------------------------------------------------


def test_deadline_helpers():
    assert deadline_from_timeout(None) is None
    assert remaining_budget(None) is None
    assert not expired(None)
    check_deadline(None, "never trips")

    deadline = deadline_from_timeout(60.0)
    assert remaining_budget(deadline) > 59.0
    assert not expired(deadline)
    check_deadline(deadline, "plenty left")

    past = deadline_from_timeout(TINY)
    assert remaining_budget(past) <= 0.0
    assert expired(past)
    with pytest.raises(DeadlineExceededError, match="before the F-step"):
        check_deadline(past, "the F-step")


def test_spec_rejects_non_positive_timeout():
    for bad in (0.0, -1.0):
        with pytest.raises(InvalidQueryError, match="timeout_s"):
            QuerySpec(source=0, target=1, graph="g", timeout_s=bad)
    spec = QuerySpec(source=0, target=1, graph="g", timeout_s=2.5)
    assert spec.timeout_s == 2.5


def test_timeout_survives_the_wire_encoding():
    spec = QuerySpec(source=0, target=5, graph="g", timeout_s=1.25)
    assert spec_to_dict(spec)["timeout_s"] == 1.25


# -- service tier: pool wait, FEM iterations, batch siblings ------------------


def _service(test_backend, tmp_path):
    service = PathService(default_backend=test_backend.name, cache_size=32)
    service.add_graph("g", GRAPH, backend=test_backend.name,
                      db_path=test_backend.make_path())
    return service


def test_expired_budget_raises_typed_error(test_backend, tmp_path):
    with _service(test_backend, tmp_path) as service:
        with pytest.raises(DeadlineExceededError):
            service.shortest_path(0, 33, graph="g", timeout_s=TINY)


def test_generous_budget_answers_normally(test_backend, tmp_path):
    with _service(test_backend, tmp_path) as service:
        unbudgeted = service.shortest_path(0, 33, graph="g")
        budgeted = service.shortest_path(0, 33, graph="g", timeout_s=60.0)
        assert budgeted.distance == unbudgeted.distance
        assert budgeted.path == unbudgeted.path


def test_budgeted_queries_bypass_the_result_cache(test_backend, tmp_path):
    with _service(test_backend, tmp_path) as service:
        service.shortest_path(0, 33, graph="g", timeout_s=60.0)
        before = service.cache_info().hits
        service.shortest_path(0, 33, graph="g", timeout_s=60.0)
        assert service.cache_info().hits == before, \
            "a budgeted repeat must not be a cache hit"


def test_deadline_counter_increments(test_backend, tmp_path):
    from repro.obs.schema import METRIC_DEADLINE_EXCEEDED
    with _service(test_backend, tmp_path) as service:
        with pytest.raises(DeadlineExceededError):
            service.shortest_path(0, 33, graph="g", timeout_s=TINY)
        rendered = service.registry.render_prometheus()
        assert METRIC_DEADLINE_EXCEEDED in rendered


def test_batch_sibling_expiry_is_positional(test_backend, tmp_path):
    with _service(test_backend, tmp_path) as service:
        batch = service.shortest_path_many(
            [("g", 0, 33),
             QuerySpec(source=0, target=21, graph="g", timeout_s=TINY),
             ("g", 0, 40)],
            raise_on_unreachable=False)
        assert batch.errors[0] is None and batch.errors[2] is None
        assert isinstance(batch.errors[1], DeadlineExceededError)
        assert batch.results[1] is None
        assert batch.results[0] is not None and batch.results[2] is not None
        assert batch.stats.deadline_exceeded == 1


def test_batch_default_timeout_applies_to_unbudgeted_specs(test_backend,
                                                           tmp_path):
    with _service(test_backend, tmp_path) as service:
        batch = service.shortest_path_many(
            [("g", 0, 33), ("g", 0, 40)], raise_on_unreachable=False,
            timeout_s=TINY)
        assert all(isinstance(error, DeadlineExceededError)
                   for error in batch.errors)
        assert batch.stats.deadline_exceeded == 2
        generous = service.shortest_path_many(
            [("g", 0, 33)], raise_on_unreachable=False, timeout_s=60.0)
        assert generous.errors == [None]


def test_explicit_spec_timeout_wins_over_batch_default(test_backend,
                                                       tmp_path):
    with _service(test_backend, tmp_path) as service:
        batch = service.shortest_path_many(
            [QuerySpec(source=0, target=33, graph="g", timeout_s=60.0),
             ("g", 0, 40)],
            raise_on_unreachable=False, timeout_s=TINY)
        assert batch.errors[0] is None, "its own generous budget wins"
        assert isinstance(batch.errors[1], DeadlineExceededError)


def test_pool_checkout_respects_the_deadline(test_backend, tmp_path):
    """With every store connection held, a budgeted query must give up
    within its budget (not hang for the full checkout timeout)."""
    with _service(test_backend, tmp_path) as service:
        pool = service._host("g").pool
        held = [pool.checkout()
                for _ in range(pool.stats().capacity)]
        try:
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                service.shortest_path(0, 33, graph="g", timeout_s=0.05)
            assert time.monotonic() - started < 5.0, \
                "the pool wait must be clamped to the query budget"
        finally:
            for store in held:
                pool.checkin(store)


# -- serve wire tier ----------------------------------------------------------


def _seed_catalog(catalog_dir):
    with PathService(catalog_path=catalog_dir) as service:
        service.add_graph("g", GRAPH, backend="sqlite",
                          db_path=os.path.join(catalog_dir, "g.db"))


@pytest.fixture
def served(tmp_path):
    catalog = str(tmp_path / "cat")
    _seed_catalog(catalog)
    service = PathService.open(catalog, shard_id="srv")
    with ShardServer(service, port=0, own_service=True) as server:
        yield server


def test_client_raises_locally_on_expired_budget(served):
    client = ShardClient(served.url)
    with pytest.raises(DeadlineExceededError):
        client.shortest_path(
            QuerySpec(source=0, target=33, graph="g", timeout_s=TINY))


def test_server_rejects_expired_raw_budget(served):
    """A request whose wire budget is already <= 0 (impossible to build
    via QuerySpec, but any client can send it) is rejected with the
    typed error before planning."""
    client = ShardClient(served.url)
    body = {"spec": dict(spec_to_dict(
        QuerySpec(source=0, target=33, graph="g")), timeout_s=-0.5),
        "use_cache": True}
    with pytest.raises(DeadlineExceededError):
        client._request_once("/shortest_path", body)


def test_budgeted_query_over_the_wire_answers(served):
    client = ShardClient(served.url)
    spec = QuerySpec(source=0, target=33, graph="g")
    clean = client.shortest_path(spec)
    budgeted = client.shortest_path(
        QuerySpec(source=0, target=33, graph="g", timeout_s=60.0))
    assert budgeted.distance == clean.distance


def test_execute_wire_reports_positional_errors(served):
    client = ShardClient(served.url)
    results, from_cache, stats, errors = client.execute([
        QuerySpec(source=0, target=33, graph="g"),
        QuerySpec(source=0, target=21, graph="g", timeout_s=TINY),
    ])
    assert errors[0] is None
    assert isinstance(errors[1], DeadlineExceededError)
    assert results[0] is not None and results[1] is None
    assert stats.deadline_exceeded == 1


# -- admission control --------------------------------------------------------


def _overloaded_server(tmp_path, **kwargs):
    catalog = str(tmp_path / "adm")
    _seed_catalog(catalog)
    service = PathService.open(catalog, shard_id="adm")
    return ShardServer(service, port=0, own_service=True, **kwargs)


def test_admission_sheds_with_typed_retryable_error(tmp_path):
    with _overloaded_server(tmp_path, max_inflight=1, max_queue=0,
                            shed_retry_after=0.02) as server:
        release = threading.Event()
        entered = threading.Event()
        original = server._service.shortest_path

        def slow(*args, **kwargs):
            entered.set()
            release.wait(timeout=10.0)
            return original(*args, **kwargs)

        server._service.shortest_path = slow
        hog = threading.Thread(
            target=lambda: ShardClient(server.url).shortest_path(
                QuerySpec(source=0, target=33, graph="g")))
        hog.start()
        try:
            assert entered.wait(timeout=10.0)
            client = ShardClient(server.url, retries=0)
            with pytest.raises(ServerOverloadedError) as shed:
                client.shortest_path(QuerySpec(source=0, target=21,
                                               graph="g"))
            assert shed.value.retry_after is not None
            assert shed.value.retry_after >= 0.02
            # Non-query endpoints stay open under overload.
            assert client.health()["status"] == "ok"
            assert "repro_shed_total" in client.metrics_text()
        finally:
            release.set()
            hog.join(timeout=10.0)


def test_shed_is_retryable_and_retries_succeed(tmp_path):
    """The typed shed rides the retry machinery: once the hog finishes,
    a retrying client's later attempt is admitted."""
    with _overloaded_server(tmp_path, max_inflight=1, max_queue=0,
                            shed_retry_after=0.01) as server:
        release = threading.Event()
        entered = threading.Event()
        original = server._service.shortest_path

        def slow(*args, **kwargs):
            entered.set()
            release.wait(timeout=10.0)
            return original(*args, **kwargs)

        server._service.shortest_path = slow
        hog = threading.Thread(
            target=lambda: ShardClient(server.url).shortest_path(
                QuerySpec(source=0, target=33, graph="g")))
        hog.start()
        try:
            assert entered.wait(timeout=10.0)
            timer = threading.Timer(0.3, lambda: (
                release.set(),
                setattr(server._service, "shortest_path", original)))
            timer.start()
            result = ShardClient(server.url, retries=8).shortest_path(
                QuerySpec(source=0, target=21, graph="g"))
            assert result.distance is not None
            timer.cancel()
        finally:
            release.set()
            server._service.shortest_path = original
            hog.join(timeout=10.0)


def test_admission_queue_admits_when_capacity_frees(tmp_path):
    with _overloaded_server(tmp_path, max_inflight=2, max_queue=4) as server:
        client = ShardClient(server.url)
        results = [client.shortest_path(QuerySpec(source=0, target=t,
                                                  graph="g"))
                   for t in (21, 33, 40)]
        assert all(r.distance is not None for r in results)


# -- shutdown accounting ------------------------------------------------------


def test_close_reports_shutdown_stats(tmp_path):
    server = _overloaded_server(tmp_path)
    server.start()
    assert server.shutdown_stats is None
    server.close()
    stats = server.shutdown_stats
    assert stats is not None
    assert stats["thread_joined"] is True
    assert stats["join_timeout_s"] == SHUTDOWN_JOIN_TIMEOUT
    assert stats["join_seconds"] >= 0.0


# -- seedable jitter ----------------------------------------------------------


def test_backoff_jitter_is_seed_deterministic(served):
    a = ShardClient(served.url, backoff_seed=42)
    b = ShardClient(served.url, backoff_seed=42)
    c = ShardClient(served.url, backoff_seed=7)
    seq_a = [a._backoff_delay(n, None, None) for n in range(6)]
    seq_b = [b._backoff_delay(n, None, None) for n in range(6)]
    seq_c = [c._backoff_delay(n, None, None) for n in range(6)]
    assert seq_a == seq_b
    assert seq_a != seq_c
    for attempt, delay in enumerate(seq_a):
        assert 0.0 <= delay <= BACKOFF_SECONDS * (2 ** attempt)


def test_backoff_floors_at_retry_after_and_caps_at_budget(served):
    client = ShardClient(served.url, backoff_seed=1)
    assert client._backoff_delay(0, 0.5, None) >= 0.5
    deadline = deadline_from_timeout(0.01)
    assert client._backoff_delay(0, 0.5, deadline) <= 0.011


def test_router_cooldown_jitter_is_seed_deterministic(tmp_path):
    from repro.shard.router import ShardRouter
    catalog = str(tmp_path / "det")
    _seed_catalog(catalog)

    def cooldowns(seed):
        with ShardRouter.open([catalog], names=["only"],
                              cooldown_seed=seed) as router:
            values = []
            for _ in range(4):
                router._mark_failure("only", ShardUnavailableError("x"))
                values.append(router._health["only"].down_until
                              - time.monotonic())
            return values

    first, second, other = cooldowns(5), cooldowns(5), cooldowns(9)
    assert [round(v, 2) for v in first] == [round(v, 2) for v in second]
    assert [round(v, 2) for v in first] != [round(v, 2) for v in other]


# -- router tier --------------------------------------------------------------


def test_router_budget_bounds_failover(tmp_path):
    """With the only shard dead and an expired budget, the router raises
    the deadline error instead of shopping the query to the shard."""
    from repro.shard.router import ShardRouter
    catalog = str(tmp_path / "rt")
    _seed_catalog(catalog)
    with ShardRouter.open([catalog], names=["only"]) as router:
        result = router.shortest_path(0, 33, graph="g", timeout_s=60.0)
        assert result.distance is not None
        with pytest.raises(DeadlineExceededError):
            router.shortest_path(0, 33, graph="g", timeout_s=TINY)


def test_router_scatter_reports_positional_deadline_errors(tmp_path):
    from repro.shard.router import ShardRouter
    catalog = str(tmp_path / "sc")
    _seed_catalog(catalog)
    with ShardRouter.open([catalog], names=["only"]) as router:
        scatter = router.shortest_path_many(
            [("g", 0, 33),
             QuerySpec(source=0, target=21, graph="g", timeout_s=TINY)],
            raise_on_unreachable=False)
        assert scatter.errors[0] is None
        assert isinstance(scatter.errors[1], DeadlineExceededError)
        assert scatter.results[0] is not None
        assert scatter.results[1] is None


def test_breaker_states_follow_failures(tmp_path):
    from repro.shard.router import (
        BREAKER_CLOSED,
        BREAKER_OPEN,
        ShardRouter,
    )
    catalog = str(tmp_path / "brk")
    _seed_catalog(catalog)
    with ShardRouter.open([catalog], names=["only"]) as router:
        health = router._health["only"]
        assert health.breaker_state() == BREAKER_CLOSED
        router._mark_failure("only", ShardUnavailableError("boom"))
        assert health.breaker_state() == BREAKER_OPEN
        assert router.shard_health()["only"]["breaker"] == BREAKER_OPEN
        # Cooldown elapsed with the streak unbroken: half-open probe.
        health.down_until = time.monotonic() - 0.01
        assert health.breaker_state() == "half_open"
        router._mark_success("only")
        assert health.breaker_state() == BREAKER_CLOSED
        rendered = router.registry.render_prometheus()
        assert 'repro_breaker_state{shard="only"} 0' in rendered
