"""Tests for the disk managers and the buffer pool."""

import pytest

from repro.errors import BufferPoolError, DiskError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import FileDiskManager, InMemoryDiskManager, open_disk


class TestDiskManagers:
    def test_allocate_and_rw_in_memory(self):
        disk = InMemoryDiskManager(page_size=256)
        page_id = disk.allocate_page()
        data = bytearray(b"\x07" * 256)
        disk.write_page(page_id, bytes(data))
        assert disk.read_page(page_id) == data
        assert disk.reads == 1 and disk.writes == 1

    def test_unallocated_page_rejected(self):
        disk = InMemoryDiskManager()
        with pytest.raises(DiskError):
            disk.read_page(0)

    def test_wrong_size_write_rejected(self):
        disk = InMemoryDiskManager(page_size=256)
        page_id = disk.allocate_page()
        with pytest.raises(DiskError):
            disk.write_page(page_id, b"short")

    def test_file_disk_round_trip(self, tmp_path):
        disk = FileDiskManager(str(tmp_path / "pages.db"), page_size=256)
        first = disk.allocate_page()
        second = disk.allocate_page()
        disk.write_page(first, b"\x01" * 256)
        disk.write_page(second, b"\x02" * 256)
        assert disk.read_page(first) == bytearray(b"\x01" * 256)
        assert disk.read_page(second) == bytearray(b"\x02" * 256)
        disk.close()

    def test_open_disk_dispatch(self, tmp_path):
        assert isinstance(open_disk(None), InMemoryDiskManager)
        file_backed = open_disk(str(tmp_path / "x.db"))
        assert isinstance(file_backed, FileDiskManager)
        file_backed.close()

    def test_reset_counters(self):
        disk = InMemoryDiskManager()
        page_id = disk.allocate_page()
        disk.read_page(page_id)
        disk.reset_counters()
        assert disk.reads == 0

    def test_page_size_validation(self):
        with pytest.raises(ValueError):
            InMemoryDiskManager(page_size=8)


class TestBufferPool:
    def make_pool(self, capacity=4):
        return BufferPool(InMemoryDiskManager(page_size=256), capacity=capacity)

    def test_new_page_is_pinned(self):
        pool = self.make_pool()
        page = pool.new_page()
        with pytest.raises(BufferPoolError):
            # Cannot be evicted while pinned, so filling the pool fails.
            for _ in range(10):
                pool.new_page()
        assert page.page_id == 0

    def test_fetch_hit_and_miss(self):
        pool = self.make_pool()
        page = pool.new_page()
        pool.unpin(page.page_id, dirty=True)
        pool.fetch_page(page.page_id)
        pool.unpin(page.page_id)
        assert pool.stats.hits == 1
        # Evict by filling the pool, then refetch -> miss.
        for _ in range(4):
            extra = pool.new_page()
            pool.unpin(extra.page_id, dirty=True)
        pool.fetch_page(page.page_id)
        assert pool.stats.misses >= 1

    def test_dirty_page_survives_eviction(self):
        pool = self.make_pool(capacity=2)
        page = pool.new_page()
        slot = page.insert(b"payload")
        pool.unpin(page.page_id, dirty=True)
        for _ in range(3):
            extra = pool.new_page()
            pool.unpin(extra.page_id, dirty=True)
        reloaded = pool.fetch_page(page.page_id)
        assert reloaded.read(slot) == b"payload"
        pool.unpin(page.page_id)

    def test_unpin_unknown_page(self):
        pool = self.make_pool()
        with pytest.raises(BufferPoolError):
            pool.unpin(99)

    def test_unpin_not_pinned(self):
        pool = self.make_pool()
        page = pool.new_page()
        pool.unpin(page.page_id)
        with pytest.raises(BufferPoolError):
            pool.unpin(page.page_id)

    def test_context_manager(self):
        pool = self.make_pool()
        page = pool.new_page()
        pool.unpin(page.page_id, dirty=True)
        with pool.page(page.page_id) as fetched:
            assert fetched.page_id == page.page_id

    def test_set_capacity_shrinks(self):
        pool = self.make_pool(capacity=8)
        for _ in range(6):
            page = pool.new_page()
            pool.unpin(page.page_id, dirty=True)
        pool.set_capacity(2)
        assert pool.num_resident <= 2

    def test_smaller_buffer_means_more_misses(self):
        """The mechanism behind Figure 8(b): shrinking the buffer increases
        physical reads for the same access pattern."""
        def run(capacity):
            disk = InMemoryDiskManager(page_size=256)
            pool = BufferPool(disk, capacity=capacity)
            pages = []
            for _ in range(12):
                page = pool.new_page()
                pool.unpin(page.page_id, dirty=True)
                pages.append(page.page_id)
            for _ in range(3):
                for page_id in pages:
                    pool.fetch_page(page_id)
                    pool.unpin(page_id)
            return pool.stats.misses

        assert run(capacity=2) > run(capacity=16)

    def test_hit_ratio(self):
        pool = self.make_pool()
        page = pool.new_page()
        pool.unpin(page.page_id)
        pool.fetch_page(page.page_id)
        pool.unpin(page.page_id)
        assert 0.0 < pool.stats.hit_ratio <= 1.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            self.make_pool(capacity=0)
