"""Catalog manifest merge-on-write under concurrent writers.

The shard router's rebalance rewrites *two* manifests and relies on the
catalog's write protocol — re-read the on-disk document, apply one change,
atomically replace the file — to guarantee that writers sharing a catalog
path merge rather than erase each other's registrations.  These tests pin
that contract down with two :class:`Catalog` handles (the same shape as
two services, or two processes, sharing one directory).
"""

import os
import threading

from repro.catalog import Catalog, load_manifest
from repro.catalog.manifest import CatalogEntry, SegTableRecord
from repro.graph.generators import grid_graph
from repro.service import PathService


def _entry(name, fingerprint="sha256:feed"):
    return CatalogEntry(name=name, backend="sqlite",
                        db_path=f"{name}.db", fingerprint=fingerprint)


class TestTwoWriterMergeOnWrite:
    def test_interleaved_puts_from_two_handles_all_survive(self, tmp_path):
        path = str(tmp_path / "cat")
        first = Catalog(path)
        second = Catalog(path)  # separate handle, same manifest file
        for index in range(10):
            # Strict alternation: each put must merge the other handle's
            # latest registration instead of replaying its own stale copy.
            first.put(_entry(f"a{index}"))
            second.put(_entry(f"b{index}"))
        merged = load_manifest(os.path.join(path, "manifest.json"))
        assert len(merged.entries) == 20
        assert {f"a{i}" for i in range(10)} <= set(merged.entries)
        assert {f"b{i}" for i in range(10)} <= set(merged.entries)

    def test_threaded_writers_never_erase_each_other(self, tmp_path):
        path = str(tmp_path / "cat")
        writers = 4
        per_writer = 12
        catalogs = [Catalog(path) for _ in range(writers)]
        errors = []

        def write(writer_index):
            try:
                for index in range(per_writer):
                    catalogs[writer_index].put(
                        _entry(f"w{writer_index}-g{index}"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(index,))
                   for index in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        merged = load_manifest(os.path.join(path, "manifest.json"))
        assert len(merged.entries) == writers * per_writer

    def test_mixed_mutators_merge(self, tmp_path):
        """set_segtable / set_shard / remove from one handle interleaved
        with puts from another all land in the final document."""
        path = str(tmp_path / "cat")
        first = Catalog(path)
        second = Catalog(path)
        first.put(_entry("alpha"))
        first.put(_entry("doomed"))
        second.put(_entry("beta"))
        first.set_segtable("alpha", SegTableRecord(lthd=4.0))
        second.set_shard("beta", "shard-b")
        first.remove("doomed")
        merged = load_manifest(os.path.join(path, "manifest.json"))
        assert set(merged.entries) == {"alpha", "beta"}
        assert merged.entries["alpha"].segtable is not None
        assert merged.entries["alpha"].segtable.lthd == 4.0
        assert merged.entries["beta"].shard == "shard-b"

    def test_two_services_sharing_one_catalog_path(self, tmp_path):
        """The scenario the shard router's rebalance depends on: two
        *services* bound to one catalog directory register graphs
        concurrently and neither registration is lost."""
        path = str(tmp_path / "cat")
        graph_a = grid_graph(4, 4, seed=1)
        graph_b = grid_graph(5, 5, seed=2)
        with PathService(catalog_path=path) as one, \
                PathService(catalog_path=path) as two:
            barrier = threading.Barrier(2)
            errors = []

            def register(service, name, graph):
                try:
                    barrier.wait(timeout=10)
                    service.add_graph(
                        name, graph, backend="sqlite",
                        db_path=os.path.join(path, f"{name}.db"))
                    service.build_segtable(name, lthd=3.0)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=register, args=(one, "left", graph_a)),
                threading.Thread(target=register, args=(two, "right", graph_b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
        merged = load_manifest(os.path.join(path, "manifest.json"))
        assert set(merged.entries) == {"left", "right"}
        # Both SegTable registrations survived the interleaved writes too.
        assert merged.entries["left"].segtable is not None
        assert merged.entries["right"].segtable is not None
        # And a cold process warm-starts both graphs from the shared file.
        with PathService.open(path) as warm:
            assert set(warm.graphs()) == {"left", "right"}
            assert warm.segtable_builds == 0
