"""Unit tests for the client-server DB-API backend.

Covers the parts the backend-generic conformance suite cannot see from
the outside: DSN parsing, the stdlib wire protocol (hello, admission
control, the CLI entry point), typed error mapping, connection-cap
arithmetic, clone privacy of the server-side ``TEMP`` table, durable
SegTable metadata, and database relocation into a plain SQLite file.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.segtable import build_segtable
from repro.core.stats import QueryStats
from repro.core.store.registry import create_store
from repro.errors import (
    BackendConnectionError,
    BackendOperationalError,
    InvalidDSNError,
    ShardUnavailableError,
    StoreBackendError,
)
from repro.graph.fingerprint import fingerprint_graph
from repro.graph.model import Graph
from repro.store import fallback_server
from repro.store.dbapi import DBAPIGraphStore, ParsedDSN, driver_for


def small_graph() -> Graph:
    graph = Graph()
    graph.add_edge(1, 2, 4.0)
    graph.add_edge(1, 3, 1.0)
    graph.add_edge(3, 2, 1.0)
    graph.add_edge(2, 4, 2.0)
    graph.add_edge(3, 4, 6.0)
    return graph


class TestParsedDSN:
    def test_defaults(self):
        parsed = ParsedDSN("fallback://127.0.0.1:5433/")
        assert parsed.scheme == "fallback"
        assert parsed.host == "127.0.0.1"
        assert parsed.port == 5433
        assert parsed.table_prefix == "repro_"
        assert parsed.pool_size is None
        assert parsed.connection_limit() is None

    def test_repro_params_are_stripped_from_driver_dsn(self):
        parsed = ParsedDSN("postgresql://u@h:5/db"
                           "?table_prefix=x_&pool_size=4&max_overflow=2"
                           "&sslmode=require")
        assert parsed.table_prefix == "x_"
        assert parsed.connection_limit() == 6
        assert "table_prefix" not in parsed.driver_dsn
        assert "pool_size" not in parsed.driver_dsn
        assert "sslmode=require" in parsed.driver_dsn

    def test_with_table_prefix_replaces_only_that_param(self):
        parsed = ParsedDSN("fallback://h:1/?table_prefix=a_&pool_size=2")
        replaced = ParsedDSN(parsed.with_table_prefix("b_"))
        assert replaced.table_prefix == "b_"
        assert replaced.pool_size == 2

    @pytest.mark.parametrize("dsn", [
        "not-a-dsn",
        "",
        "fallback://h:1/?table_prefix=1bad",
        "fallback://h:1/?table_prefix=x%3B--",
        "fallback://h:1/?pool_size=many",
        "fallback://h:1/?pool_size=0",
        "fallback://h:1/?max_overflow=x",
    ])
    def test_invalid_dsns_raise(self, dsn):
        with pytest.raises(InvalidDSNError):
            ParsedDSN(dsn)

    def test_unknown_scheme_has_no_driver(self):
        with pytest.raises(InvalidDSNError, match="no driver"):
            driver_for(ParsedDSN("weird://h:1/"))

    def test_dbapi_backend_requires_a_dsn(self):
        with pytest.raises(InvalidDSNError):
            create_store("dbapi", path=None)


class TestWireProtocol:
    def test_hello_advertises_connection_cap(self, fallback_dsn):
        parsed = ParsedDSN(fallback_dsn)
        connection = fallback_server.connect(parsed.host, parsed.port)
        try:
            assert connection.server_max_connections == 16
            cursor = connection.execute("SELECT 1 + 1")
            assert cursor.fetchall() == [(2,)]
        finally:
            connection.close()

    def test_admission_control_refuses_excess_connections(self):
        with fallback_server.serve_in_thread(max_connections=1) as handle:
            parsed = ParsedDSN(handle.dsn)
            first = fallback_server.connect(parsed.host, parsed.port)
            try:
                with pytest.raises(fallback_server.OperationalError,
                                   match="too many connections"):
                    fallback_server.connect(parsed.host, parsed.port)
            finally:
                first.close()

    def test_rowcount_reports_changed_rows(self, fallback_dsn):
        parsed = ParsedDSN(fallback_dsn)
        connection = fallback_server.connect(parsed.host, parsed.port)
        try:
            connection.execute("CREATE TEMP TABLE t (x INTEGER)")
            cursor = connection.executemany("INSERT INTO t VALUES (?)",
                                            [(1,), (2,), (3,)])
            assert cursor.rowcount == 3
            cursor = connection.execute("UPDATE t SET x = 0 WHERE x > 1")
            assert cursor.rowcount == 2
        finally:
            connection.close()

    def test_statement_errors_are_programming_errors(self, fallback_dsn):
        parsed = ParsedDSN(fallback_dsn)
        connection = fallback_server.connect(parsed.host, parsed.port)
        try:
            with pytest.raises(fallback_server.ProgrammingError,
                               match="no_such_table"):
                connection.execute("SELECT * FROM no_such_table_xyz")
        finally:
            connection.close()

    def test_cli_serves_a_database(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.store.fallback_server",
             "--db", str(tmp_path / "cli.db"), "--port", "0"],
            env=env, stdout=subprocess.PIPE, text=True)
        try:
            banner = process.stdout.readline()
            match = re.search(r"fallback://([\d.]+):(\d+)/", banner)
            assert match, f"unexpected banner: {banner!r}"
            connection = fallback_server.connect(match.group(1),
                                                 int(match.group(2)))
            try:
                assert connection.execute("SELECT 41 + 1").fetchone() == (42,)
            finally:
                connection.close()
        finally:
            process.terminate()
            process.wait(timeout=10)


class TestErrorMapping:
    def test_unreachable_server_is_a_connection_error(self):
        with pytest.raises(BackendConnectionError):
            create_store("dbapi", path="fallback://127.0.0.1:1/")

    def test_lost_server_maps_to_connection_error(self):
        handle = fallback_server.serve_in_thread()
        store = create_store("dbapi", path=f"{handle.dsn}?table_prefix=lost_")
        store.load_graph(small_graph())
        handle.close()
        with pytest.raises(BackendConnectionError):
            store.visited_count()

    def test_bad_statement_maps_to_operational_error(self, fresh_dsn):
        store = create_store("dbapi", path=fresh_dsn())
        try:
            with pytest.raises(BackendOperationalError):
                store._execute("SELECT * FROM definitely_missing_table")
        finally:
            store.destroy()

    def test_connection_error_triggers_failover_handling(self):
        # The router/shard retry paths key off ShardUnavailableError; a
        # dead backend server must look exactly like a dead shard.
        assert issubclass(BackendConnectionError, ShardUnavailableError)
        assert issubclass(BackendConnectionError, StoreBackendError)
        assert issubclass(BackendOperationalError, StoreBackendError)


class TestConnectionCaps:
    def test_server_limit_applies_without_pool_params(self, fresh_dsn):
        store = create_store("dbapi", path=fresh_dsn())
        try:
            assert store.max_connections() == 16
        finally:
            store.destroy()

    def test_dsn_pool_params_tighten_the_cap(self, fallback_dsn):
        dsn = f"{fallback_dsn}?table_prefix=cap_&pool_size=2&max_overflow=1"
        store = create_store("dbapi", path=dsn)
        try:
            assert store.max_connections() == 3
        finally:
            store.destroy()


class TestStoreBehavior:
    def test_clone_has_private_visited_table(self, fresh_dsn):
        store = create_store("dbapi", path=fresh_dsn())
        try:
            store.load_graph(small_graph())
            store.begin_query(QueryStats(), "nsql")
            store.reset_visited()
            store.insert_visited([{"nid": 1, "d2s": 0.0, "p2s": 1, "f": 0}])
            clone = store.clone()
            try:
                clone.begin_query(QueryStats(), "nsql")
                clone.reset_visited()
                # The server-side TEMP TVisited is connection-private:
                # the clone starts empty and its writes stay invisible
                # to the primary.
                assert clone.visited_count() == 0
                clone.insert_visited([{"nid": 2, "d2s": 1.0, "p2s": 2,
                                       "f": 0}])
                assert store.visited_count() == 1
                # Shared graph tables are visible to both handles.
                assert clone.expand_hops is not None
                assert clone.content_fingerprint() == \
                    store.content_fingerprint()
            finally:
                clone.close()
        finally:
            store.destroy()

    def test_segtable_lthd_survives_in_meta_table(self, fresh_dsn):
        dsn = fresh_dsn()
        store = create_store("dbapi", path=dsn)
        store.load_graph(small_graph())
        build_segtable(store, 3.0)
        store.close()

        reopened = create_store("dbapi", path=dsn)
        try:
            assert reopened.has_persistent_tables()
            assert reopened.has_persistent_segtable()
            assert reopened.persistent_segtable_lthd() == 3.0
            reopened.adopt_segtable(3.0)
            assert reopened.has_segtable
            assert reopened.segtable_lthd == 3.0
            counts = reopened.segment_counts()
            assert counts["out"] >= 1 and counts["in"] >= 1
        finally:
            reopened.destroy()

    def test_destroy_drops_namespaced_tables(self, fresh_dsn):
        dsn = fresh_dsn()
        store = create_store("dbapi", path=dsn)
        store.load_graph(small_graph())
        store.destroy()
        fresh = create_store("dbapi", path=dsn)
        try:
            assert not fresh.has_persistent_tables()
        finally:
            fresh.destroy()

    def test_export_database_relocates_to_sqlite(self, fresh_dsn, tmp_path):
        graph = small_graph()
        store = create_store("dbapi", path=fresh_dsn())
        try:
            store.load_graph(graph)
            build_segtable(store, 3.0)
            assert store.supports_relocation()
            dest = str(tmp_path / "relocated.db")
            store.export_database(dest)
        finally:
            store.destroy()

        local = create_store("sqlite", path=dest)
        try:
            assert local.has_persistent_tables()
            assert local.content_fingerprint() == fingerprint_graph(graph)
            assert local.has_persistent_segtable()
        finally:
            local.close()

    def test_store_is_a_registered_dbapi_store(self, fresh_dsn):
        store = create_store("dbapi", path=fresh_dsn())
        try:
            assert isinstance(store, DBAPIGraphStore)
            assert store.backend_name == "dbapi"
            assert type(store).supports_concurrent_readers
        finally:
            store.destroy()
