"""Tests for the physical query operators."""

import pytest

from repro.errors import QueryError
from repro.rdb.engine import Database
from repro.rdb.expressions import col
from repro.rdb.operators import (
    Aggregate,
    Filter,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    Project,
    Rows,
    SeqScan,
    Sort,
    scalar,
)
from repro.rdb.schema import Column
from repro.rdb.types import FLOAT, INTEGER


@pytest.fixture
def database():
    db = Database(buffer_capacity=16)
    yield db
    db.close()


@pytest.fixture
def edges(database):
    table = database.create_table(
        "TEdges",
        [Column("fid", INTEGER), Column("tid", INTEGER), Column("cost", FLOAT)],
    )
    table.create_index("fid")
    table.insert_many(
        [
            {"fid": 1, "tid": 2, "cost": 4.0},
            {"fid": 1, "tid": 3, "cost": 2.0},
            {"fid": 2, "tid": 3, "cost": 1.0},
            {"fid": 3, "tid": 4, "cost": 5.0},
        ]
    )
    return table


@pytest.fixture
def visited(database):
    table = database.create_table(
        "TVisited",
        [Column("nid", INTEGER), Column("d2s", FLOAT), Column("f", INTEGER)],
    )
    table.insert_many(
        [
            {"nid": 1, "d2s": 0.0, "f": 1},
            {"nid": 2, "d2s": 4.0, "f": 0},
            {"nid": 3, "d2s": 2.0, "f": 0},
        ]
    )
    return table


class TestScans:
    def test_seq_scan(self, edges):
        assert len(SeqScan(edges).rows()) == 4

    def test_seq_scan_with_alias(self, edges):
        row = SeqScan(edges, alias="e").rows()[0]
        assert set(row) == {"e.fid", "e.tid", "e.cost"}

    def test_index_scan_equality(self, edges):
        rows = IndexScan(edges, "fid", key=1).rows()
        assert {row["tid"] for row in rows} == {2, 3}

    def test_index_scan_range(self, edges):
        rows = IndexScan(edges, "fid", low=2, high=3).rows()
        assert {row["fid"] for row in rows} == {2, 3}

    def test_index_scan_requires_key_or_range(self, edges):
        with pytest.raises(QueryError):
            IndexScan(edges, "fid")

    def test_rows_operator(self):
        rows = Rows([{"a": 1}, {"a": 2}], alias="r").rows()
        assert rows == [{"r.a": 1}, {"r.a": 2}]


class TestFilterProject:
    def test_filter(self, visited):
        rows = Filter(SeqScan(visited), col("f").eq(0)).rows()
        assert {row["nid"] for row in rows} == {2, 3}

    def test_filter_with_callable(self, visited):
        rows = Filter(SeqScan(visited), lambda row: row["d2s"] > 1.0).rows()
        assert {row["nid"] for row in rows} == {2, 3}

    def test_project(self, visited):
        rows = Project(SeqScan(visited), {"nid": col("nid"),
                                           "double": col("d2s") * 2}).rows()
        assert {row["nid"]: row["double"] for row in rows} == {1: 0.0, 2: 8.0, 3: 4.0}


class TestJoins:
    def test_nested_loop_join(self, visited, edges):
        joined = NestedLoopJoin(
            SeqScan(visited), SeqScan(edges, alias="e"),
            lambda row: row["nid"] == row["e.fid"],
        ).rows()
        assert len(joined) == 4

    def test_index_nested_loop_join(self, visited, edges):
        frontier = Filter(SeqScan(visited), col("f").eq(0))
        joined = IndexNestedLoopJoin(frontier, edges, outer_key=col("nid"),
                                     inner_column="fid", inner_alias="e").rows()
        # Node 2 has one outgoing edge, node 3 has one.
        assert len(joined) == 2
        assert all("e.tid" in row and "nid" in row for row in joined)

    def test_index_nested_loop_join_residual(self, visited, edges):
        joined = IndexNestedLoopJoin(
            SeqScan(visited), edges, outer_key=col("nid"), inner_column="fid",
            inner_alias="e", residual=lambda row: row["e.cost"] > 2.0,
        ).rows()
        assert all(row["e.cost"] > 2.0 for row in joined)

    def test_hash_join(self, visited, edges):
        joined = HashJoin(SeqScan(visited), SeqScan(edges, alias="e"),
                          left_key=col("nid"), right_key=col("e.fid")).rows()
        assert len(joined) == 4


class TestSortLimitAggregate:
    def test_sort_ascending(self, visited):
        rows = Sort(SeqScan(visited), [(col("d2s"), True)]).rows()
        assert [row["nid"] for row in rows] == [1, 3, 2]

    def test_sort_descending(self, visited):
        rows = Sort(SeqScan(visited), [(col("d2s"), False)]).rows()
        assert [row["nid"] for row in rows] == [2, 3, 1]

    def test_sort_multiple_keys(self, visited):
        rows = Sort(SeqScan(visited), [(col("f"), True), (col("d2s"), False)]).rows()
        assert [row["nid"] for row in rows] == [2, 3, 1]

    def test_limit(self, visited):
        assert len(Limit(SeqScan(visited), 2).rows()) == 2
        assert Limit(SeqScan(visited), 0).rows() == []
        with pytest.raises(QueryError):
            Limit(SeqScan(visited), -1)

    def test_aggregate_global(self, visited):
        rows = Aggregate(SeqScan(visited), [], {
            "min_d": ("min", col("d2s")),
            "max_d": ("max", col("d2s")),
            "count": ("count", col("nid")),
            "avg_d": ("avg", col("d2s")),
            "sum_d": ("sum", col("d2s")),
        }).rows()
        assert rows == [{"min_d": 0.0, "max_d": 4.0, "count": 3,
                         "avg_d": 2.0, "sum_d": 6.0}]

    def test_aggregate_group_by(self, edges):
        rows = Aggregate(SeqScan(edges), ["fid"], {
            "min_cost": ("min", col("cost")),
        }).rows()
        assert {row["fid"]: row["min_cost"] for row in rows} == {1: 2.0, 2: 1.0, 3: 5.0}

    def test_aggregate_empty_input_global(self):
        rows = Aggregate(Rows([]), [], {"count": ("count", col("x"))}).rows()
        assert rows == [{"count": 0}]

    def test_aggregate_unknown_function(self, visited):
        with pytest.raises(QueryError):
            Aggregate(SeqScan(visited), [], {"x": ("median", col("d2s"))})

    def test_scalar_helper(self, visited):
        value = scalar(Aggregate(Filter(SeqScan(visited), col("f").eq(0)), [],
                                 {"m": ("min", col("d2s"))}), "m")
        assert value == 2.0
        assert scalar(Rows([]), "m") is None
