"""Unit tests for the graph stores (minidb and SQLite backends).

These exercise the store-level statements in isolation: loading, the F/E/M
statement methods, statistics statements, and the SegTable tables.
"""

import pytest

from repro.core.directions import BACKWARD_DIRECTION, FORWARD_DIRECTION, INFINITY
from repro.core.stats import QueryStats
from repro.core.store.base import IndexMode
from repro.core.store.minidb import MiniDBGraphStore
from repro.core.store.sqlite import SQLiteGraphStore
from repro.errors import InvalidQueryError
from repro.graph.model import Graph


def small_graph() -> Graph:
    graph = Graph()
    graph.add_edge(1, 2, 4.0)
    graph.add_edge(1, 3, 1.0)
    graph.add_edge(3, 2, 1.0)
    graph.add_edge(2, 4, 2.0)
    graph.add_edge(3, 4, 6.0)
    return graph


def make_store(backend: str):
    store = MiniDBGraphStore(buffer_capacity=32) if backend == "minidb" else SQLiteGraphStore()
    store.load_graph(small_graph())
    store.begin_query(QueryStats(), "nsql")
    return store


BACKENDS = ["minidb", "sqlite"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestStoreBasics:
    def test_initial_visited_empty(self, backend):
        store = make_store(backend)
        store.reset_visited()
        assert store.visited_count() == 0
        store.close()

    def test_insert_visited_defaults(self, backend):
        store = make_store(backend)
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 0.0, "p2s": 1, "f": 0}])
        rows = store.visited_rows()
        assert len(rows) == 1
        assert rows[0]["nid"] == 1
        assert rows[0]["d2s"] == 0.0
        assert rows[0]["d2t"] == INFINITY or rows[0]["d2t"] > 1e17
        store.close()

    def test_top1_and_min_distance(self, backend):
        store = make_store(backend)
        store.reset_visited()
        store.insert_visited(
            [
                {"nid": 1, "d2s": 5.0, "f": 0},
                {"nid": 2, "d2s": 2.0, "f": 0},
                {"nid": 3, "d2s": 1.0, "f": 1},
            ]
        )
        assert store.top1_min_unfinalized(FORWARD_DIRECTION) == 2
        assert store.min_unfinalized_distance(FORWARD_DIRECTION) == 2.0
        assert store.count_unfinalized(FORWARD_DIRECTION) == 2
        store.close()

    def test_no_candidates_returns_none(self, backend):
        store = make_store(backend)
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 5.0, "f": 1}])
        assert store.top1_min_unfinalized(FORWARD_DIRECTION) is None
        assert store.min_unfinalized_distance(FORWARD_DIRECTION) is None
        store.close()

    def test_finalize_node_and_is_finalized(self, backend):
        store = make_store(backend)
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 0.0, "f": 0}])
        assert not store.is_finalized(1, FORWARD_DIRECTION)
        store.finalize_node(1, FORWARD_DIRECTION)
        assert store.is_finalized(1, FORWARD_DIRECTION)
        store.close()

    def test_min_total_cost_and_meeting_node(self, backend):
        store = make_store(backend)
        store.reset_visited()
        store.insert_visited(
            [
                {"nid": 1, "d2s": 1.0, "d2t": 9.0, "f": 0, "b": 0},
                {"nid": 2, "d2s": 3.0, "d2t": 2.0, "f": 0, "b": 0},
            ]
        )
        assert store.min_total_cost() == 5.0
        assert store.meeting_node(5.0) == 2
        store.close()

    def test_min_total_cost_without_meeting(self, backend):
        store = make_store(backend)
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 1.0, "f": 0}])
        assert store.min_total_cost() == INFINITY
        store.close()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("sql_style", ["nsql", "tsql"])
class TestStoreExpansion:
    def test_forward_expand_single_node(self, backend, sql_style):
        store = make_store(backend)
        store.begin_query(QueryStats(), sql_style)
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 0.0, "p2s": 1, "f": 0}])
        affected = store.expand(FORWARD_DIRECTION, mid=1)
        assert affected == 2  # nodes 2 and 3 discovered
        rows = {row["nid"]: row for row in store.visited_rows()}
        assert rows[2]["d2s"] == 4.0
        assert rows[3]["d2s"] == 1.0
        store.close()

    def test_expand_improves_existing_distance(self, backend, sql_style):
        store = make_store(backend)
        store.begin_query(QueryStats(), sql_style)
        store.reset_visited()
        store.insert_visited(
            [
                {"nid": 3, "d2s": 1.0, "p2s": 1, "f": 0},
                {"nid": 2, "d2s": 4.0, "p2s": 1, "f": 0},
            ]
        )
        affected = store.expand(FORWARD_DIRECTION, mid=3)
        assert affected >= 1
        rows = {row["nid"]: row for row in store.visited_rows()}
        assert rows[2]["d2s"] == 2.0
        assert rows[2]["p2s"] == 3
        store.close()

    def test_set_expansion_with_flags(self, backend, sql_style):
        store = make_store(backend)
        store.begin_query(QueryStats(), sql_style)
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 0.0, "p2s": 1, "f": 0}])
        selected = store.select_frontier_set(FORWARD_DIRECTION, float("-inf"))
        assert selected == 1
        affected = store.expand(FORWARD_DIRECTION)
        assert affected == 2
        finalized = store.finalize_frontier(FORWARD_DIRECTION)
        assert finalized == 1
        store.close()

    def test_backward_expansion_uses_incoming_edges(self, backend, sql_style):
        store = make_store(backend)
        store.begin_query(QueryStats(), sql_style)
        store.reset_visited()
        store.insert_visited([{"nid": 4, "d2t": 0.0, "p2t": 4, "b": 0}])
        affected = store.expand(BACKWARD_DIRECTION, mid=4)
        assert affected == 2  # nodes 2 and 3 reach node 4
        rows = {row["nid"]: row for row in store.visited_rows()}
        assert rows[2]["d2t"] == 2.0
        assert rows[2]["p2t"] == 4
        assert rows[3]["d2t"] == 6.0
        store.close()

    def test_pruning_skips_expensive_candidates(self, backend, sql_style):
        store = make_store(backend)
        store.begin_query(QueryStats(), sql_style)
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 0.0, "p2s": 1, "f": 0}])
        # With minCost = 2 and lb = 0 only candidates of cost <= 2 survive.
        affected = store.expand(FORWARD_DIRECTION, mid=1, prune_lb=0.0,
                                prune_min_cost=2.0)
        rows = {row["nid"] for row in store.visited_rows()}
        assert affected == 1
        assert rows == {1, 3}
        store.close()


@pytest.mark.parametrize("backend", BACKENDS)
class TestStoreSegTable:
    def test_segtable_expand_requires_load(self, backend):
        store = make_store(backend)
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 0.0, "f": 0}])
        with pytest.raises(InvalidQueryError):
            store.expand(FORWARD_DIRECTION, mid=1, use_segtable=True)
        store.close()

    def test_load_segtable_and_counts(self, backend):
        store = make_store(backend)
        out_segments = [{"fid": 1, "tid": 2, "pid": 3, "cost": 2.0}]
        in_segments = [{"fid": 2, "tid": 1, "pid": 3, "cost": 2.0}]
        store.load_segtable(out_segments, in_segments, lthd=3.0)
        assert store.segment_counts() == {"out": 1, "in": 1}
        assert store.has_segtable
        assert store.segtable_lthd == 3.0
        store.close()

    def test_expand_over_segments_uses_pid_as_predecessor(self, backend):
        store = make_store(backend)
        store.load_segtable(
            [{"fid": 1, "tid": 4, "pid": 2, "cost": 6.0}],
            [{"fid": 4, "tid": 1, "pid": 2, "cost": 6.0}],
            lthd=6.0,
        )
        store.begin_query(QueryStats(), "nsql")
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 0.0, "p2s": 1, "f": 0}])
        store.expand(FORWARD_DIRECTION, mid=1, use_segtable=True)
        rows = {row["nid"]: row for row in store.visited_rows()}
        assert rows[4]["d2s"] == 6.0
        assert rows[4]["p2s"] == 2
        store.close()

    def test_statement_counting(self, backend):
        store = make_store(backend)
        stats = QueryStats()
        store.begin_query(stats, "nsql")
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 0.0, "f": 0}])
        store.top1_min_unfinalized(FORWARD_DIRECTION)
        store.expand(FORWARD_DIRECTION, mid=1)
        assert stats.statements >= 3
        store.close()


class TestIndexModes:
    @pytest.mark.parametrize("mode", [IndexMode.CLUSTERED, IndexMode.NONCLUSTERED,
                                      IndexMode.NONE])
    def test_minidb_all_index_modes_answer_lookups(self, mode):
        store = MiniDBGraphStore(buffer_capacity=32)
        store.load_graph(small_graph(), index_mode=mode)
        store.begin_query(QueryStats(), "nsql")
        store.reset_visited()
        store.insert_visited([{"nid": 1, "d2s": 0.0, "p2s": 1, "f": 0}])
        affected = store.expand(FORWARD_DIRECTION, mid=1)
        assert affected == 2
        store.close()

    def test_invalid_index_mode(self):
        store = MiniDBGraphStore()
        with pytest.raises(ValueError):
            store.load_graph(small_graph(), index_mode="bitmap")
        store.close()
