"""Tests for the window function and the MERGE statement."""

import pytest

from repro.errors import QueryError
from repro.rdb.engine import Database
from repro.rdb.expressions import col
from repro.rdb.merge import merge_into, merge_with_update_insert
from repro.rdb.schema import Column
from repro.rdb.types import FLOAT, INTEGER
from repro.rdb.window import Window, window_row_number


class TestWindowFunction:
    ROWS = [
        {"tid": 1, "cost": 5.0, "pred": 10},
        {"tid": 1, "cost": 3.0, "pred": 11},
        {"tid": 2, "cost": 7.0, "pred": 12},
        {"tid": 2, "cost": 7.0, "pred": 13},
        {"tid": 3, "cost": 1.0, "pred": 14},
    ]

    def test_row_number_partitioned(self):
        ranked = window_row_number(self.ROWS, ["tid"], [(col("cost"), True)])
        winners = {row["tid"]: row["pred"] for row in ranked if row["rownum"] == 1}
        assert winners[1] == 11
        assert winners[3] == 14
        # Ties keep exactly one row per partition at rownum = 1.
        assert list(row["rownum"] for row in ranked if row["tid"] == 2) == [1, 2]

    def test_row_number_carries_non_aggregated_columns(self):
        """The point of the window function in the paper: the predecessor
        column survives without an extra join."""
        ranked = window_row_number(self.ROWS, ["tid"], [(col("cost"), True)])
        assert all("pred" in row for row in ranked)

    def test_rank_function(self):
        ranked = list(Window(self.ROWS, "rank", ["tid"],
                             order_by=[(col("cost"), True)], output="rk"))
        ranks_for_2 = sorted(row["rk"] for row in ranked if row["tid"] == 2)
        assert ranks_for_2 == [1, 1]

    def test_aggregate_window_functions(self):
        rows = list(Window(self.ROWS, "min", ["tid"], argument=col("cost"),
                           output="min_cost"))
        assert all(row["min_cost"] == 3.0 for row in rows if row["tid"] == 1)
        rows = list(Window(self.ROWS, "count", ["tid"], output="n"))
        assert all(row["n"] == 2 for row in rows if row["tid"] == 2)

    def test_sum_and_avg(self):
        rows = list(Window(self.ROWS, "sum", ["tid"], argument=col("cost"),
                           output="total"))
        assert all(row["total"] == 14.0 for row in rows if row["tid"] == 2)
        rows = list(Window(self.ROWS, "avg", ["tid"], argument=col("cost"),
                           output="mean"))
        assert all(row["mean"] == 4.0 for row in rows if row["tid"] == 1)

    def test_row_number_requires_order_by(self):
        with pytest.raises(QueryError):
            Window(self.ROWS, "row_number", ["tid"])

    def test_aggregate_requires_argument(self):
        with pytest.raises(QueryError):
            Window(self.ROWS, "min", ["tid"])

    def test_unknown_function(self):
        with pytest.raises(QueryError):
            Window(self.ROWS, "median", ["tid"])

    def test_empty_input(self):
        assert window_row_number([], ["tid"], [(col("cost"), True)]) == []


class TestMerge:
    @pytest.fixture
    def visited(self):
        db = Database(buffer_capacity=16)
        table = db.create_table(
            "TVisited",
            [Column("nid", INTEGER), Column("d2s", FLOAT), Column("p2s", INTEGER),
             Column("f", INTEGER)],
        )
        table.create_index("nid", unique=True)
        table.insert_many(
            [
                {"nid": 1, "d2s": 0.0, "p2s": 1, "f": 1},
                {"nid": 2, "d2s": 9.0, "p2s": 1, "f": 0},
            ]
        )
        yield table
        db.close()

    SOURCE = [
        {"nid": 2, "cost": 4.0, "pred": 3},   # improves node 2
        {"nid": 3, "cost": 2.0, "pred": 1},   # new node
        {"nid": 1, "cost": 5.0, "pred": 2},   # worse than existing: ignored
    ]

    def _merge(self, table, function):
        return function(
            table, self.SOURCE, key_column="nid", source_key="nid",
            matched_condition=lambda target, source: target["d2s"] > source["cost"],
            matched_update=lambda target, source: {
                "d2s": source["cost"], "p2s": source["pred"], "f": 0,
            },
            not_matched_insert=lambda source: {
                "nid": source["nid"], "d2s": source["cost"],
                "p2s": source["pred"], "f": 0,
            },
        )

    @pytest.mark.parametrize("function", [merge_into, merge_with_update_insert],
                             ids=["merge", "update_insert"])
    def test_merge_semantics(self, visited, function):
        result = self._merge(visited, function)
        assert result.updated == 1
        assert result.inserted == 1
        assert result.affected == 2
        rows = {row["nid"]: row for row in visited.scan()}
        assert rows[2]["d2s"] == 4.0 and rows[2]["p2s"] == 3 and rows[2]["f"] == 0
        assert rows[3]["d2s"] == 2.0
        assert rows[1]["d2s"] == 0.0  # untouched

    @pytest.mark.parametrize("function", [merge_into, merge_with_update_insert],
                             ids=["merge", "update_insert"])
    def test_merge_idempotent_second_run(self, visited, function):
        self._merge(visited, function)
        second = self._merge(visited, function)
        assert second.affected == 0

    def test_merge_without_insert_branch(self, visited):
        result = merge_into(
            visited, self.SOURCE, key_column="nid", source_key="nid",
            matched_update=lambda target, source: {"d2s": source["cost"]},
            matched_condition=lambda target, source: target["d2s"] > source["cost"],
            not_matched_insert=None,
        )
        assert result.inserted == 0
        assert visited.row_count == 2

    def test_merge_without_update_branch(self, visited):
        result = merge_into(
            visited, self.SOURCE, key_column="nid", source_key="nid",
            matched_update=None,
            not_matched_insert=lambda source: {
                "nid": source["nid"], "d2s": source["cost"],
                "p2s": source["pred"], "f": 0,
            },
        )
        assert result.updated == 0
        assert result.inserted == 1

    def test_merge_empty_source(self, visited):
        result = merge_into(visited, [], key_column="nid", source_key="nid")
        assert result.affected == 0
