"""Tests for SegTable construction (Section 4.2)."""

import pytest

from repro.core.directions import BACKWARD_DIRECTION, FORWARD_DIRECTION
from repro.core.segtable import SegTableConfig, build_segtable
from repro.core.store.minidb import MiniDBGraphStore
from repro.core.store.sqlite import SQLiteGraphStore
from repro.errors import InvalidQueryError
from repro.graph.generators import grid_graph, power_law_graph
from repro.graph.model import Graph
from repro.memory.dijkstra import single_source_distances


def diamond_graph() -> Graph:
    """The SegTable example needs multi-hop shortcuts: 0->1->2 is cheaper
    than the direct 0->2 edge."""
    graph = Graph()
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 1.0)
    graph.add_edge(0, 2, 5.0)
    graph.add_edge(2, 3, 1.0)
    graph.add_edge(3, 4, 9.0)
    return graph


def make_store(backend: str, graph: Graph):
    store = MiniDBGraphStore(buffer_capacity=64) if backend == "minidb" else SQLiteGraphStore()
    store.load_graph(graph)
    return store


BACKENDS = ["minidb", "sqlite"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestConstructionCorrectness:
    def test_out_segments_match_bounded_dijkstra(self, backend):
        """TOutSegs must contain exactly the pairs within lthd, at the true
        shortest distance, plus the longer original edges."""
        graph = diamond_graph()
        store = make_store(backend, graph)
        build_segtable(store, lthd=3.0)
        segments = {
            (int(row["fid"]), int(row["tid"])): row["cost"]
            for row in store.seg_rows(FORWARD_DIRECTION)
        }
        for source in graph.nodes():
            reachable = single_source_distances(graph, source, max_distance=3.0)
            for target, distance in reachable.items():
                if target == source:
                    continue
                assert segments[(source, target)] == pytest.approx(distance)
        # The expensive direct edge 3->4 (weight 9 > lthd) is preserved.
        assert segments[(3, 4)] == pytest.approx(9.0)
        store.close()

    def test_in_segments_are_reversed_out_segments(self, backend):
        graph = diamond_graph()
        store = make_store(backend, graph)
        build_segtable(store, lthd=3.0)
        out_pairs = {
            (int(row["fid"]), int(row["tid"])): row["cost"]
            for row in store.seg_rows(FORWARD_DIRECTION)
        }
        in_pairs = {
            (int(row["tid"]), int(row["fid"])): row["cost"]
            for row in store.seg_rows(BACKWARD_DIRECTION)
        }
        assert out_pairs == in_pairs
        store.close()

    def test_segment_predecessors_lie_on_shortest_paths(self, backend):
        graph = diamond_graph()
        store = make_store(backend, graph)
        build_segtable(store, lthd=3.0)
        rows = {(int(r["fid"]), int(r["tid"])): int(r["pid"])
                for r in store.seg_rows(FORWARD_DIRECTION)}
        # The shortest 0 -> 2 path is 0 -> 1 -> 2, so pre(2) must be 1.
        assert rows[(0, 2)] == 1
        store.close()

    def test_larger_lthd_gives_no_fewer_segments(self, backend):
        """Figures 9(a)/9(b): the index grows with the threshold."""
        graph = power_law_graph(60, edges_per_node=2, seed=2)
        small = make_store(backend, graph)
        stats_small = build_segtable(small, lthd=5.0)
        large = make_store(backend, graph)
        stats_large = build_segtable(large, lthd=40.0)
        assert stats_large.encoding_number >= stats_small.encoding_number
        small.close()
        large.close()

    def test_build_stats_populated(self, backend):
        graph = grid_graph(3, 3, seed=1)
        store = make_store(backend, graph)
        stats = build_segtable(store, lthd=10.0)
        assert stats.lthd == 10.0
        assert stats.iterations > 0
        assert stats.statements > 0
        assert stats.out_segments > 0
        assert stats.in_segments > 0
        assert stats.total_time > 0
        assert stats.encoding_number == stats.out_segments + stats.in_segments
        store.close()

    def test_forward_only_build(self, backend):
        graph = diamond_graph()
        store = make_store(backend, graph)
        stats = build_segtable(store, lthd=3.0, build_backward=False)
        assert stats.out_segments > 0
        assert stats.in_segments == 0
        store.close()

    def test_tsql_build_matches_nsql(self, backend):
        graph = diamond_graph()
        nsql_store = make_store(backend, graph)
        tsql_store = make_store(backend, graph)
        build_segtable(nsql_store, lthd=3.0, sql_style="nsql")
        build_segtable(tsql_store, lthd=3.0, sql_style="tsql")
        to_set = lambda store: {
            (int(r["fid"]), int(r["tid"]), r["cost"])
            for r in store.seg_rows(FORWARD_DIRECTION)
        }
        assert to_set(nsql_store) == to_set(tsql_store)
        nsql_store.close()
        tsql_store.close()


class TestConfigValidation:
    def test_invalid_threshold(self):
        with pytest.raises(InvalidQueryError):
            SegTableConfig(lthd=0)

    def test_invalid_style(self):
        with pytest.raises(ValueError):
            SegTableConfig(lthd=1.0, sql_style="legacy")

    def test_invalid_index_mode(self):
        with pytest.raises(ValueError):
            SegTableConfig(lthd=1.0, index_mode="bitmap")

    def test_empty_graph_builds_empty_index(self):
        graph = Graph()
        graph.add_node(0)
        store = MiniDBGraphStore()
        store.load_graph(graph)
        stats = build_segtable(store, lthd=5.0)
        assert stats.encoding_number == 0
        store.close()
