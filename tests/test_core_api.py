"""Tests for the top-level API (RelationalPathFinder, shortest_path)."""

import pytest

from repro.core.api import (
    METHODS,
    RelationalPathFinder,
    shortest_path,
    shortest_path_in_memory,
)
from repro.errors import InvalidQueryError, NodeNotFoundError, PathNotFoundError
from repro.graph.generators import grid_graph, path_graph
from repro.memory.dijkstra import dijkstra_shortest_path


class TestRelationalPathFinder:
    def test_methods_constant(self):
        assert set(METHODS) == {"DJ", "BDJ", "BSDJ", "BBFS", "BSEG", "MDJ", "MBDJ"}

    def test_context_manager(self):
        graph = path_graph(6, weight_range=(2, 2))
        with RelationalPathFinder(graph) as finder:
            result = finder.shortest_path(0, 5)
            assert result.distance == 10

    def test_unknown_backend(self):
        with pytest.raises(InvalidQueryError):
            RelationalPathFinder(path_graph(3), backend="oracle")

    def test_unknown_method(self):
        with RelationalPathFinder(path_graph(3)) as finder:
            with pytest.raises(InvalidQueryError):
                finder.shortest_path(0, 2, method="ASTAR")

    def test_unknown_node(self):
        with RelationalPathFinder(path_graph(3)) as finder:
            with pytest.raises(NodeNotFoundError):
                finder.shortest_path(0, 99)

    def test_bseg_without_segtable(self):
        with RelationalPathFinder(path_graph(4)) as finder:
            with pytest.raises(InvalidQueryError):
                finder.shortest_path(0, 3, method="BSEG")

    def test_memory_methods_through_finder(self):
        graph = grid_graph(3, 3, seed=1)
        expected = dijkstra_shortest_path(graph, 0, 8).distance
        with RelationalPathFinder(graph) as finder:
            for method in ("MDJ", "MBDJ"):
                result = finder.shortest_path(0, 8, method=method)
                assert result.distance == expected
                assert result.stats.method == method

    def test_method_names_case_insensitive(self):
        with RelationalPathFinder(path_graph(4, weight_range=(1, 1))) as finder:
            assert finder.shortest_path(0, 3, method="bsdj").distance == 3

    def test_segtable_stats_exposed(self):
        with RelationalPathFinder(grid_graph(3, 3, seed=2)) as finder:
            stats = finder.build_segtable(lthd=5)
            assert finder.segtable_stats is stats
            assert stats.encoding_number > 0


class TestOneShotHelpers:
    def test_shortest_path_default_method(self):
        graph = path_graph(5, weight_range=(1, 1))
        result = shortest_path(graph, 0, 4)
        assert result.distance == 4
        assert result.path == [0, 1, 2, 3, 4]

    def test_shortest_path_bseg_builds_index(self):
        graph = grid_graph(3, 3, seed=3)
        expected = dijkstra_shortest_path(graph, 0, 8).distance
        result = shortest_path(graph, 0, 8, method="BSEG", lthd=10)
        assert abs(result.distance - expected) < 1e-6

    def test_shortest_path_sqlite_backend(self):
        graph = path_graph(4, weight_range=(2, 2))
        result = shortest_path(graph, 0, 3, backend="sqlite")
        assert result.distance == 6

    def test_shortest_path_memory_method(self):
        graph = path_graph(4, weight_range=(2, 2))
        result = shortest_path(graph, 0, 3, method="MBDJ")
        assert result.distance == 6

    def test_in_memory_helper_validates_method(self):
        with pytest.raises(InvalidQueryError):
            shortest_path_in_memory(path_graph(3), 0, 2, method="DJ")

    def test_unreachable_propagates(self):
        graph = path_graph(3)
        graph.add_node(9)
        with pytest.raises(PathNotFoundError):
            shortest_path(graph, 0, 9)

    def test_stats_attached_to_result(self):
        graph = grid_graph(3, 3, seed=4)
        result = shortest_path(graph, 0, 8, method="BSDJ")
        assert result.stats is not None
        assert result.stats.method == "BSDJ"
        assert result.stats.found
        assert result.num_edges == len(result.path) - 1
