"""Tests for dataset stand-ins, edge-list I/O and graph statistics."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.datasets import (
    dataset_spec,
    dataset_statistics,
    dblp_standin,
    googleweb_standin,
    list_datasets,
    livejournal_standin,
    load_dataset,
)
from repro.graph.generators import random_graph
from repro.graph.io import read_edge_list, write_edge_list


class TestDatasets:
    def test_known_datasets(self):
        assert list_datasets() == ["dblp", "googleweb", "livejournal"]

    def test_spec_matches_paper_table1(self):
        spec = dataset_spec("livejournal")
        assert spec.paper_nodes == 4_847_571
        assert spec.paper_edges == 43_110_428

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_spec("twitter")

    def test_standins_scale_down(self):
        graph = dblp_standin(scale=1 / 1000)
        spec = dataset_spec("dblp")
        assert graph.num_nodes < spec.paper_nodes
        assert graph.num_nodes >= 200

    def test_explicit_node_count(self):
        graph = googleweb_standin(num_nodes=300)
        assert graph.num_nodes == 300

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            load_dataset("dblp", num_nodes=0)

    def test_avg_degree_close_to_paper(self):
        """The stand-in keeps the original's average degree within a factor
        of two (the generator rounds edges-per-node)."""
        spec = dataset_spec("livejournal")
        graph = livejournal_standin(num_nodes=500)
        standin_degree = graph.num_edges / graph.num_nodes
        assert standin_degree > spec.avg_degree / 2
        assert standin_degree < spec.avg_degree * 2

    def test_dataset_statistics_rows(self):
        rows = dataset_statistics(scale=1 / 2000)
        assert {row["dataset"] for row in rows} == set(list_datasets())
        for row in rows:
            assert row["standin_nodes"] > 0
            assert row["standin_edges"] > 0


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        graph = random_graph(30, seed=5)
        path = tmp_path / "graph.txt"
        written = write_edge_list(graph, path)
        assert written == graph.num_edges
        loaded = read_edge_list(path)
        assert sorted(loaded.edge_triples()) == sorted(graph.edge_triples())

    def test_read_two_column_file(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text("# comment\n1 2\n2 3\n", encoding="utf-8")
        graph = read_edge_list(path, default_cost=7.0)
        assert graph.edge_cost(1, 2) == 7.0

    def test_read_comma_separated(self, tmp_path):
        path = tmp_path / "pairs.csv"
        path.write_text("1,2,3.5\n", encoding="utf-8")
        graph = read_edge_list(path)
        assert graph.edge_cost(1, 2) == 3.5

    def test_bad_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3 4 5\n", encoding="utf-8")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b c\n", encoding="utf-8")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)
