"""Deprecation hygiene: shims warn exactly once and stay result-identical
to the service layer, covering the legacy call patterns from examples/."""

import warnings

import pytest

import repro.core.api as api
from repro.core.api import RelationalPathFinder, shortest_path
from repro.errors import NodeNotFoundError, PathNotFoundError
from repro.graph.generators import grid_graph, path_graph, power_law_graph
from repro.service import PathService
from repro.workloads.queries import generate_queries


@pytest.fixture(autouse=True)
def reset_warning_dedup():
    """Each test observes the warning as if in a fresh process."""
    api._WARNED.clear()
    yield
    api._WARNED.clear()


def _collect_deprecations(action):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        action()
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestWarnOnce:
    def test_finder_warns_exactly_once(self):
        graph = path_graph(4)

        def construct_twice():
            with RelationalPathFinder(graph):
                pass
            with RelationalPathFinder(graph):
                pass

        caught = _collect_deprecations(construct_twice)
        assert len(caught) == 1
        assert "PathService" in str(caught[0].message)

    def test_one_shot_warns_exactly_once(self):
        graph = path_graph(4, weight_range=(1, 1))

        def call_twice():
            shortest_path(graph, 0, 3)
            shortest_path(graph, 0, 3)

        caught = _collect_deprecations(call_twice)
        assert len(caught) == 1

    def test_finder_and_one_shot_warn_independently(self):
        graph = path_graph(4, weight_range=(1, 1))

        def call_both():
            with RelationalPathFinder(graph):
                pass
            shortest_path(graph, 0, 3)

        caught = _collect_deprecations(call_both)
        assert len(caught) == 2

    def test_queries_through_finder_do_not_warn(self):
        graph = path_graph(4, weight_range=(1, 1))
        finder = RelationalPathFinder(graph)

        def query():
            finder.shortest_path(0, 3)
            finder.shortest_path(0, 3, method="BDJ")

        caught = _collect_deprecations(query)
        finder.close()
        assert caught == []


class TestLegacyParity:
    """The exact call patterns from examples/ produce PathResults identical
    to the service layer's."""

    def _assert_same_result(self, legacy, modern):
        assert legacy.source == modern.source
        assert legacy.target == modern.target
        assert abs(legacy.distance - modern.distance) < 1e-9
        assert legacy.path == modern.path
        assert legacy.stats.method == modern.stats.method
        assert legacy.stats.expansions == modern.stats.expansions
        assert legacy.stats.statements == modern.stats.statements
        assert legacy.stats.visited_nodes == modern.stats.visited_nodes

    def test_quickstart_pattern_every_method(self):
        # examples/quickstart.py (pre-redesign): finder + SegTable + all methods.
        graph = power_law_graph(200, edges_per_node=2, seed=7)
        source, target = generate_queries(graph, 1, seed=3,
                                          min_hops=3).queries[0]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            finder = RelationalPathFinder(graph, backend="minidb",
                                          buffer_capacity=256)
            finder.build_segtable(lthd=10)
        with PathService() as service:
            service.add_graph("default", graph, backend="minidb",
                              buffer_capacity=256)
            service.build_segtable(lthd=10)
            for method in ("DJ", "BDJ", "BSDJ", "BBFS", "BSEG", "MDJ", "MBDJ"):
                legacy = finder.shortest_path(source, target, method=method)
                modern = service.shortest_path(source, target, method=method,
                                               use_cache=False)
                self._assert_same_result(legacy, modern)
        finder.close()

    def test_road_network_pattern(self):
        # examples/road_network.py: grid graph, per-method finder queries.
        graph = grid_graph(6, 6, seed=11)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with RelationalPathFinder(graph) as finder:
                legacy = finder.shortest_path(0, 35, method="BSDJ")
        with PathService() as service:
            service.add_graph("default", graph)
            modern = service.shortest_path(0, 35, method="BSDJ")
        self._assert_same_result(legacy, modern)

    def test_one_shot_pattern(self):
        graph = grid_graph(4, 4, seed=5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = shortest_path(graph, 0, 15, method="BDJ")
        with PathService() as service:
            service.add_graph("default", graph)
            modern = service.shortest_path(0, 15, method="BDJ")
        self._assert_same_result(legacy, modern)


class TestOneShotBugfixes:
    """Regression tests for the two historical one-shot wrapper bugs."""

    def test_memory_methods_validate_nodes(self):
        # Previously the MDJ/MBDJ fast path skipped _check_node and raised
        # backend-specific errors for bad endpoints.
        graph = path_graph(3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for method in ("MDJ", "MBDJ"):
                with pytest.raises(NodeNotFoundError):
                    shortest_path(graph, 0, 99, method=method)
                with pytest.raises(NodeNotFoundError):
                    shortest_path(graph, 99, 0, method=method)

    def test_memory_methods_validate_sql_style(self):
        graph = path_graph(3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError):
                shortest_path(graph, 0, 2, method="MDJ", sql_style="mysql")

    def test_max_iterations_plumbed_through(self):
        # Previously the wrapper silently ignored max_iterations.
        graph = path_graph(8, weight_range=(1, 1))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(PathNotFoundError):
                shortest_path(graph, 0, 7, method="DJ", max_iterations=1)
            result = shortest_path(graph, 0, 7, method="DJ")
            assert result.distance == 7

    def test_db_path_plumbed_through(self, tmp_path):
        # Previously the wrapper could not run against a file-backed store.
        db_file = tmp_path / "one_shot.sqlite"
        graph = path_graph(4, weight_range=(2, 2))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = shortest_path(graph, 0, 3, backend="sqlite",
                                   db_path=str(db_file))
        assert result.distance == 6
        assert db_file.exists()


class TestShimHistoricalSemantics:
    def test_build_segtable_rebuilds_every_call(self):
        # Unlike PathService.build_segtable, the legacy shim never memoizes.
        graph = grid_graph(4, 4, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with RelationalPathFinder(graph) as finder:
                first = finder.build_segtable(3.0)
                second = finder.build_segtable(3.0)
                assert second is not first

    def test_segtable_stats_attribute_writable(self):
        graph = grid_graph(4, 4, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with RelationalPathFinder(graph) as finder:
                finder.build_segtable(3.0)
                finder.segtable_stats = None  # historical staleness marker
                assert finder.segtable_stats is None

    def test_store_module_reload_safe(self):
        # In a subprocess: importlib.reload rebinds the module's globals in
        # place, so running it here would poison this process's registry
        # with factories building fresh class objects.
        import subprocess
        import sys

        code = (
            "import importlib, repro.core.store.minidb as m, "
            "repro.core.store.sqlite as s; "
            "importlib.reload(m); importlib.reload(s); "  # must not raise
            "from repro.service import create_store; "
            "store = create_store('minidb'); store.close(); print('ok')"
        )
        result = subprocess.run([sys.executable, "-c", code],
                                capture_output=True, text=True)
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout
