"""Tests for query workloads, the experiment runner and bench helpers."""

import pytest

from repro.bench.experiments import (
    build_power_graph,
    build_random_graph,
    construction_sweep,
    index_mode_comparison,
    lthd_sweep,
    method_comparison,
    sql_style_comparison,
)
from repro.bench.harness import bench_scale, format_table, paper_reference, scaled
from repro.core.api import RelationalPathFinder
from repro.graph.generators import grid_graph, path_graph, power_law_graph
from repro.graph.model import Graph
from repro.memory.dijkstra import dijkstra_shortest_path
from repro.workloads.queries import generate_queries
from repro.workloads.runner import run_workload


class TestQueryWorkloads:
    def test_generates_requested_count(self):
        graph = power_law_graph(80, edges_per_node=2, seed=1)
        workload = generate_queries(graph, 5, seed=2)
        assert len(workload) == 5

    def test_queries_are_connected(self):
        graph = power_law_graph(80, edges_per_node=2, seed=1)
        workload = generate_queries(graph, 5, seed=3)
        for source, target in workload:
            dijkstra_shortest_path(graph, source, target)  # must not raise

    def test_deterministic_for_seed(self):
        graph = grid_graph(5, 5, seed=1)
        first = generate_queries(graph, 4, seed=7)
        second = generate_queries(graph, 4, seed=7)
        assert first.queries == second.queries

    def test_min_hops_respected(self):
        graph = path_graph(20, weight_range=(1, 1))
        workload = generate_queries(graph, 5, seed=1, min_hops=3)
        for source, target in workload:
            assert abs(source - target) >= 3

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_queries(path_graph(5), 0)

    def test_disconnected_graph_handled(self):
        graph = Graph()
        graph.add_node(0)
        graph.add_node(1)
        workload = generate_queries(graph, 3, seed=1)
        assert len(workload) == 0


class TestRunner:
    def test_aggregate_fields(self):
        graph = grid_graph(4, 4, seed=2)
        workload = generate_queries(graph, 3, seed=5)
        with RelationalPathFinder(graph) as finder:
            aggregate = run_workload(finder, workload, "BSDJ")
        assert aggregate.method == "BSDJ"
        assert aggregate.queries == 3
        assert aggregate.avg_time > 0
        assert aggregate.avg_expansions > 0
        assert aggregate.avg_visited > 0
        row = aggregate.as_row()
        assert row["method"] == "BSDJ"

    def test_unreachable_queries_counted(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_node(5)
        with RelationalPathFinder(graph) as finder:
            aggregate = run_workload(finder, [(0, 5)], "BSDJ")
        assert aggregate.not_found == 1
        assert aggregate.queries == 0


class TestBenchHelpers:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": None}], title="T")
        assert "T" in text
        assert "10" in text
        assert "-" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([])

    def test_paper_reference(self):
        text = paper_reference("Table 2", ["DJ is slowest", "BSDJ wins"])
        assert "Table 2" in text and "BSDJ wins" in text

    def test_scaling_helpers(self):
        assert bench_scale() > 0
        assert scaled(1000) >= 50

    def test_graph_builders(self):
        assert build_power_graph(60).num_nodes == 60
        assert build_random_graph(60).num_nodes == 60


class TestExperimentHelpers:
    GRAPH = power_law_graph(70, edges_per_node=2, seed=9)

    def test_method_comparison(self):
        aggregates = method_comparison(self.GRAPH, ["BSDJ", "BBFS", "BSEG"],
                                       num_queries=2, lthd=10)
        assert [a.method for a in aggregates] == ["BSDJ", "BBFS", "BSEG"]
        assert all(a.queries == 2 for a in aggregates)

    def test_lthd_sweep(self):
        rows = lthd_sweep(self.GRAPH, [5, 20], num_queries=2)
        assert [row["lthd"] for row in rows] == [5, 20]
        assert rows[1]["segments"] >= rows[0]["segments"]

    def test_index_mode_comparison(self):
        rows = index_mode_comparison(self.GRAPH, method="BSDJ", num_queries=1)
        assert [row["index_strategy"] for row in rows] == ["NoIndex", "Index", "CluIndex"]

    def test_sql_style_comparison(self):
        rows = sql_style_comparison(self.GRAPH, method="BSDJ", num_queries=1)
        assert [row["sql_features"] for row in rows] == ["NSQL", "TSQL"]

    def test_construction_sweep(self):
        rows = construction_sweep({"power": grid_graph(3, 3, seed=1)}, [5, 10])
        assert len(rows) == 2
        assert all(row["segments"] > 0 for row in rows)


class TestServiceRunner:
    def test_run_service_workload_aggregate(self):
        from repro.service import PathService
        from repro.workloads.runner import run_service_workload

        graph = power_law_graph(100, edges_per_node=2, seed=6)
        workload = generate_queries(graph, 4, seed=8)
        with PathService() as service:
            service.add_graph("default", graph)
            aggregate, batch_stats = run_service_workload(
                service, workload, method="BSDJ")
        assert aggregate.method == "BSDJ"
        assert aggregate.queries + aggregate.not_found == len(workload)
        assert batch_stats.total == len(workload)
        assert batch_stats.per_method.get("BSDJ") == len(workload)

    def test_run_service_workload_auto_label(self):
        from repro.service import PathService
        from repro.workloads.runner import run_service_workload

        graph = power_law_graph(100, edges_per_node=2, seed=6)
        workload = generate_queries(graph, 3, seed=9)
        with PathService() as service:
            service.add_graph("default", graph)
            aggregate, batch_stats = run_service_workload(
                service, workload, method="auto")
        # The label is the dominant resolved method, never the sentinel.
        assert aggregate.method != "AUTO"
        assert aggregate.method in batch_stats.per_method

    def test_bench_backend_env_override(self, monkeypatch):
        from repro.bench.harness import bench_backend

        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        assert bench_backend() == "minidb"
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "SQLite")
        assert bench_backend() == "sqlite"
        # A typo'd engine must fail loudly, not benchmark the wrong one.
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "oracle")
        with pytest.raises(ValueError):
            bench_backend()

    def test_run_service_workload_counts_each_execution_once(self):
        from repro.service import PathService
        from repro.workloads.runner import run_service_workload

        graph = grid_graph(4, 4, seed=3)
        workload = [(0, 15), (0, 15), (0, 15), (0, 12)]
        with PathService() as service:
            service.add_graph("default", graph)
            aggregate, batch_stats = run_service_workload(
                service, workload, method="BDJ")
        # Cache hits replay an earlier execution; the aggregate must not
        # re-count it per duplicate.
        assert batch_stats.cache_hits == 2
        assert aggregate.queries == 2

    def test_run_service_workload_warm_cache_aggregates_nothing(self):
        from repro.service import PathService
        from repro.workloads.runner import run_service_workload

        graph = grid_graph(4, 4, seed=3)
        workload = [(0, 15), (0, 12)]
        with PathService() as service:
            service.add_graph("default", graph)
            run_service_workload(service, workload, method="BDJ")
            aggregate, batch_stats = run_service_workload(
                service, workload, method="BDJ")  # fully warm
        assert batch_stats.cache_hits == 2
        assert aggregate.queries == 0  # nothing executed in this batch
