"""Differential tests: every query kind × method × backend agrees with a
pure-Python reference, pair for pair.

The reference oracles are deliberately independent of the relational
machinery: a binary-heap Dijkstra for ``path`` and a plain BFS layering
for the hop kinds (``bounded_hop`` / ``reachability`` report the
*fewest-hops* distance).  The seeded sweep covers a random digraph with
an explicit self loop, unreachable pairs, and ``source == target``; the
property tests then let hypothesis hunt for shapes the sweep missed.
"""

from collections import deque

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import PathNotFoundError
from repro.graph.generators import random_graph
from repro.graph.model import Graph
from repro.memory.dijkstra import dijkstra_shortest_path
from repro.service import PathService

RELATIONAL_METHODS = ("DJ", "BDJ", "BSDJ", "BSEG")
BACKENDS = ("minidb", "sqlite")


def oracle_distance(graph, source, target):
    """Weighted shortest distance, or ``None`` when unreachable."""
    try:
        return dijkstra_shortest_path(graph, source, target).distance
    except PathNotFoundError:
        return None


def oracle_hops(graph, source, target):
    """Fewest-hops distance by BFS, or ``None`` when unreachable."""
    hops = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        if node == target:
            return hops[node]
        for neighbor, _cost in graph.out_edges(node):
            if neighbor not in hops:
                hops[neighbor] = hops[node] + 1
                queue.append(neighbor)
    return hops.get(target)


def check_path_kind(service, graph, source, target, method):
    expected = oracle_distance(graph, source, target)
    if expected is None:
        with pytest.raises(PathNotFoundError):
            service.shortest_path(source, target, graph="g", method=method,
                                  use_cache=False)
        return
    result = service.shortest_path(source, target, graph="g", method=method,
                                   use_cache=False)
    assert result.distance == pytest.approx(expected)
    assert result.path[0] == source and result.path[-1] == target
    result.validate_against(graph)


def check_reachability_kind(service, graph, source, target, method):
    hops = oracle_hops(graph, source, target)
    if hops is None:
        with pytest.raises(PathNotFoundError):
            service.shortest_path(source, target, graph="g", method=method,
                                  kind="reachability", use_cache=False)
        return
    result = service.shortest_path(source, target, graph="g", method=method,
                                   kind="reachability", use_cache=False)
    assert result.distance == hops
    assert result.path[0] == source and result.path[-1] == target
    assert len(result.path) - 1 == hops


def check_bounded_hop_kind(service, graph, source, target, method):
    hops = oracle_hops(graph, source, target)
    if hops is None:
        with pytest.raises(PathNotFoundError):
            service.shortest_path(source, target, graph="g", method=method,
                                  kind="bounded_hop", max_hops=8,
                                  use_cache=False)
        return
    # An exact budget answers; one hop less must fail (unless adjacent
    # or the pair is trivially the same node).
    budget = max(1, hops)
    result = service.shortest_path(source, target, graph="g", method=method,
                                   kind="bounded_hop", max_hops=budget,
                                   use_cache=False)
    assert result.distance == hops
    assert len(result.path) - 1 == hops
    if hops > 1:
        with pytest.raises(PathNotFoundError):
            service.shortest_path(source, target, graph="g", method=method,
                                  kind="bounded_hop", max_hops=hops - 1,
                                  use_cache=False)


KIND_CHECKS = {
    "path": check_path_kind,
    "reachability": check_reachability_kind,
    "bounded_hop": check_bounded_hop_kind,
}


@pytest.mark.parametrize("backend", BACKENDS)
def test_differential_sweep_kinds_methods_backends(backend):
    """Seeded sweep: a random digraph (self loop included) checked pair
    for pair, for every kind × method on both store backends."""
    graph = random_graph(48, avg_degree=2.2, seed=97)
    graph.add_edge(3, 3, 5.0)  # a self loop must not disturb any answer
    # A mix of reachable, unreachable, adjacent, and self pairs; the
    # low average degree guarantees some unreachable ones.
    pairs = [(3, 17), (0, 40), (21, 8), (11, 11), (40, 0), (7, 33)]
    with PathService(cache_size=0) as service:
        service.add_graph("g", graph, backend=backend)
        service.build_segtable("g", lthd=6)
        assert any(oracle_distance(graph, s, t) is None for s, t in pairs), \
            "the sweep must include an unreachable pair"
        for source, target in pairs:
            for method in RELATIONAL_METHODS:
                for kind, check in KIND_CHECKS.items():
                    check(service, graph, source, target, method)


@st.composite
def digraph_cases(draw):
    """A small random weighted digraph (self loops allowed) + a pair."""
    num_nodes = draw(st.integers(min_value=2, max_value=14))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1),
                st.integers(0, num_nodes - 1),
                st.integers(1, 20),
            ),
            min_size=1,
            max_size=40,
        )
    )
    graph = Graph()
    for nid in range(num_nodes):
        graph.add_node(nid)
    for fid, tid, cost in edges:
        graph.add_edge(fid, tid, float(cost))
    source = draw(st.integers(0, num_nodes - 1))
    target = draw(st.integers(0, num_nodes - 1))
    return graph, source, target


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=digraph_cases())
def test_property_every_kind_matches_reference(case):
    """Hypothesis sweep: all three kinds agree with their oracle on
    arbitrary digraphs, including unreachable pairs and self loops."""
    graph, source, target = case
    with PathService(cache_size=0) as service:
        service.add_graph("g", graph)
        service.build_segtable("g", lthd=6)
        for method in ("auto", "DJ"):
            for check in KIND_CHECKS.values():
                check(service, graph, source, target, method)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=digraph_cases())
def test_property_sqlite_hop_kinds_match_minidb(case):
    """The two backends answer the hop kinds identically — same hop
    distance AND same (deterministically tie-broken) path."""
    graph, source, target = case
    shapes = []
    for backend in BACKENDS:
        with PathService(cache_size=0) as service:
            service.add_graph("g", graph, backend=backend)
            try:
                result = service.shortest_path(
                    source, target, graph="g", kind="reachability",
                    use_cache=False)
                shapes.append((result.distance, tuple(result.path)))
            except PathNotFoundError:
                shapes.append(None)
    assert shapes[0] == shapes[1]
