"""Tests for the heap file and row serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SerializationError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.storage.heap_file import HeapFile
from repro.storage.serialization import FLOAT, INTEGER, TEXT, RowSerializer


def make_heap(capacity=16, page_size=256) -> HeapFile:
    return HeapFile(BufferPool(InMemoryDiskManager(page_size=page_size), capacity))


class TestHeapFile:
    def test_insert_and_read(self):
        heap = make_heap()
        rid = heap.insert(b"record-1")
        assert heap.read(rid) == b"record-1"
        assert len(heap) == 1

    def test_spills_to_multiple_pages(self):
        heap = make_heap(page_size=128)
        rids = [heap.insert(b"x" * 40) for _ in range(20)]
        assert heap.num_pages > 1
        assert len({rid.page_id for rid in rids}) == heap.num_pages

    def test_scan_returns_all_records(self):
        heap = make_heap()
        expected = {i: f"row{i}".encode() for i in range(25)}
        rids = {i: heap.insert(record) for i, record in expected.items()}
        scanned = dict(heap.scan())
        assert len(scanned) == 25
        for i, rid in rids.items():
            assert scanned[rid] == expected[i]

    def test_delete(self):
        heap = make_heap()
        rid = heap.insert(b"gone")
        heap.delete(rid)
        assert len(heap) == 0
        assert rid not in dict(heap.scan())

    def test_update_in_place(self):
        heap = make_heap()
        rid = heap.insert(b"aaaa")
        new_rid = heap.update(rid, b"bbbb")
        assert new_rid == rid
        assert heap.read(new_rid) == b"bbbb"

    def test_update_relocates_when_growing(self):
        heap = make_heap(page_size=128)
        rid = heap.insert(b"a" * 30)
        heap.insert(b"b" * 60)
        new_rid = heap.update(rid, b"c" * 100)
        assert heap.read(new_rid) == b"c" * 100
        assert len(heap) == 2

    def test_truncate(self):
        heap = make_heap()
        for i in range(10):
            heap.insert(f"row{i}".encode())
        heap.truncate()
        assert len(heap) == 0
        assert list(heap.scan()) == []
        # Pages are reused after truncation.
        heap.insert(b"again")
        assert len(heap) == 1


class TestRowSerializer:
    def test_round_trip_all_types(self):
        serializer = RowSerializer([INTEGER, FLOAT, TEXT])
        row = (42, 3.25, "hello world")
        assert serializer.decode(serializer.encode(row)) == row

    def test_null_values(self):
        serializer = RowSerializer([INTEGER, FLOAT, TEXT])
        row = (None, None, None)
        assert serializer.decode(serializer.encode(row)) == row

    def test_mixed_nulls(self):
        serializer = RowSerializer([INTEGER, TEXT, FLOAT])
        row = (7, None, -1.5)
        assert serializer.decode(serializer.encode(row)) == row

    def test_unicode_text(self):
        serializer = RowSerializer([TEXT])
        row = ("héllo — κόσμος",)
        assert serializer.decode(serializer.encode(row)) == row

    def test_wrong_arity(self):
        serializer = RowSerializer([INTEGER, INTEGER])
        with pytest.raises(SerializationError):
            serializer.encode((1,))

    def test_bad_type_rejected(self):
        serializer = RowSerializer([INTEGER])
        with pytest.raises(SerializationError):
            serializer.encode(("not an int",))

    def test_unknown_column_type(self):
        with pytest.raises(SerializationError):
            RowSerializer(["BLOB"])

    def test_truncated_record(self):
        serializer = RowSerializer([INTEGER, INTEGER])
        encoded = serializer.encode((1, 2))
        with pytest.raises(SerializationError):
            serializer.decode(encoded[:4])


@settings(max_examples=75, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(min_value=-2**62, max_value=2**62)),
            st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=True)),
            st.one_of(st.none(), st.text(max_size=30)),
        ),
        max_size=20,
    )
)
def test_property_serializer_round_trip(rows):
    """encode/decode is the identity for every supported value combination."""
    serializer = RowSerializer([INTEGER, FLOAT, TEXT])
    for row in rows:
        assert serializer.decode(serializer.encode(row)) == row


@settings(max_examples=30, deadline=None)
@given(records=st.lists(st.binary(min_size=1, max_size=60), min_size=1, max_size=60))
def test_property_heap_preserves_all_records(records):
    """A heap file never loses or corrupts inserted records."""
    heap = make_heap(capacity=8, page_size=256)
    rids = [heap.insert(record) for record in records]
    stored = dict(heap.scan())
    assert len(stored) == len(records)
    for rid, record in zip(rids, records):
        assert stored[rid] == record
