"""Tests for the asyncio front end: ``await``-able queries and
``async for`` batch streaming over both the service and the router."""

import asyncio
import os

import pytest

from repro.errors import PathNotFoundError, UnknownGraphError
from repro.graph.generators import grid_graph, power_law_graph
from repro.graph.model import Graph
from repro.serve.aio import AsyncPathService, AsyncShardRouter
from repro.service import PathService
from repro.shard import ShardRouter


def _seed_catalog(catalog_dir, graphs):
    with PathService(catalog_path=catalog_dir) as service:
        for name, graph in graphs.items():
            service.add_graph(name, graph, backend="sqlite",
                              db_path=os.path.join(catalog_dir, f"{name}.db"))


def _shape(result):
    return None if result is None else (result.distance, tuple(result.path))


@pytest.fixture
def service():
    split = Graph()
    split.add_edge(1, 2, 1.0)
    split.add_edge(3, 4, 1.0)
    with PathService() as svc:
        svc.add_graph("g", power_law_graph(50, edges_per_node=2, seed=5))
        svc.add_graph("split", split)
        yield svc


class TestAsyncPathService:
    def test_as_async_returns_borrowing_facade(self, service):
        aio = service.as_async()
        assert isinstance(aio, AsyncPathService)
        assert aio.service is service

    def test_await_matches_sync(self, service):
        expected = _shape(service.shortest_path(0, 20, graph="g"))

        async def go():
            async with service.as_async() as aio:
                return await aio.shortest_path(0, 20, graph="g")

        assert _shape(asyncio.run(go())) == expected

    def test_await_explain(self, service):
        expected = service.explain(0, 20, graph="g").method

        async def go():
            async with service.as_async() as aio:
                plan = await aio.explain(0, 20, graph="g")
                return plan.method

        assert asyncio.run(go()) == expected

    def test_async_for_streams_every_index_once(self, service):
        queries = [("g", 0, t) for t in (5, 10, 15, 20, 25)]
        expected = [_shape(r) for r in
                    service.shortest_path_many(queries).results]

        async def go():
            got = {}
            async with service.as_async(max_workers=3) as aio:
                async for index, result in aio.shortest_path_many(queries):
                    assert index not in got
                    got[index] = _shape(result)
            return got

        got = asyncio.run(go())
        assert sorted(got) == list(range(len(queries)))
        assert [got[i] for i in range(len(queries))] == expected

    def test_gather_keeps_input_order(self, service):
        queries = [("g", 0, 25), ("split", 1, 4), ("g", 0, 5)]

        async def go():
            async with service.as_async() as aio:
                return await aio.gather(queries)

        results = asyncio.run(go())
        assert results[1] is None  # unreachable pair -> None slot
        assert results[0] is not None and results[2] is not None
        assert _shape(results[0]) == _shape(
            service.shortest_path(0, 25, graph="g"))

    def test_raise_on_unreachable_propagates(self, service):
        async def go():
            async with service.as_async() as aio:
                await aio.gather([("split", 1, 4)],
                                 raise_on_unreachable=True)

        with pytest.raises(PathNotFoundError):
            asyncio.run(go())

    def test_query_errors_propagate_through_await(self, service):
        async def go():
            async with service.as_async() as aio:
                await aio.shortest_path(0, 1, graph="nope")

        with pytest.raises(UnknownGraphError):
            asyncio.run(go())

    def test_aclose_leaves_the_service_usable(self, service):
        async def go():
            aio = service.as_async()
            await aio.shortest_path(0, 20, graph="g")
            await aio.aclose()
            await aio.aclose()  # idempotent

        asyncio.run(go())
        assert service.shortest_path(0, 20, graph="g") is not None

    def test_concurrent_awaits_share_the_single_flight(self, service):
        async def go():
            async with service.as_async(max_workers=4) as aio:
                return await asyncio.gather(*[
                    aio.shortest_path(0, 20, graph="g") for _ in range(8)])

        results = asyncio.run(go())
        shapes = {_shape(r) for r in results}
        assert len(shapes) == 1  # all eight awaited the same answer


class TestAsyncShardRouter:
    @pytest.fixture
    def router(self, tmp_path):
        cat_a = str(tmp_path / "a")
        cat_b = str(tmp_path / "b")
        _seed_catalog(cat_a, {"alpha": power_law_graph(
            50, edges_per_node=2, seed=6)})
        _seed_catalog(cat_b, {"gamma": grid_graph(5, 5, seed=7)})
        with ShardRouter.open([cat_a, cat_b]) as opened:
            yield opened

    def test_as_async_returns_borrowing_facade(self, router):
        aio = router.as_async()
        assert isinstance(aio, AsyncShardRouter)
        assert aio.router is router

    def test_await_routes_to_the_owner(self, router):
        expected = _shape(router.shortest_path(0, 20, graph="alpha"))

        async def go():
            async with router.as_async() as aio:
                return await aio.shortest_path(0, 20, graph="alpha")

        assert _shape(asyncio.run(go())) == expected

    def test_async_for_routes_each_query_independently(self, router):
        queries = [("alpha", 0, 10), ("gamma", 0, 24), ("alpha", 0, 20)]
        expected = [_shape(r) for r in
                    router.shortest_path_many(queries).results]

        async def go():
            got = {}
            async with router.as_async() as aio:
                async for index, result in aio.shortest_path_many(queries):
                    got[index] = _shape(result)
            return [got[i] for i in range(len(queries))]

        assert asyncio.run(go()) == expected

    def test_scatter_returns_the_full_scatter_result(self, router):
        queries = [("alpha", 0, 10), ("gamma", 0, 24)]
        expected = router.shortest_path_many(queries)

        async def go():
            async with router.as_async() as aio:
                return await aio.scatter(queries, concurrency=2)

        scatter = asyncio.run(go())
        assert [_shape(r) for r in scatter.results] == [
            _shape(r) for r in expected.results]
        assert scatter.stats.total == 2
        assert set(scatter.stats.per_shard) == {"a", "b"}

    def test_await_explain(self, router):
        async def go():
            async with router.as_async() as aio:
                return await aio.explain(0, 24, graph="gamma")

        assert asyncio.run(go()).method == router.explain(
            0, 24, graph="gamma").method
