"""Tests for the in-memory competitors (MDJ, MBDJ, BFS)."""

import random

import pytest

from repro.errors import NodeNotFoundError, PathNotFoundError
from repro.graph.generators import grid_graph, path_graph, power_law_graph, random_graph
from repro.graph.model import Graph
from repro.memory.bfs import bfs_distances, bfs_shortest_path
from repro.memory.bidirectional import bidirectional_dijkstra
from repro.memory.dijkstra import (
    dijkstra_shortest_path,
    single_source_distances,
)


class TestDijkstra:
    def test_path_graph_distance(self):
        graph = path_graph(6, weight_range=(1, 1))
        result = dijkstra_shortest_path(graph, 0, 5)
        assert result.distance == 5
        assert result.path == [0, 1, 2, 3, 4, 5]

    def test_source_equals_target(self):
        graph = path_graph(3)
        result = dijkstra_shortest_path(graph, 1, 1)
        assert result.distance == 0
        assert result.path == [1]

    def test_prefers_cheaper_detour(self):
        graph = Graph()
        graph.add_edge(0, 1, 10.0)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(2, 1, 1.0)
        result = dijkstra_shortest_path(graph, 0, 1)
        assert result.distance == 2.0
        assert result.path == [0, 2, 1]

    def test_unreachable_raises(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_node(5)
        with pytest.raises(PathNotFoundError):
            dijkstra_shortest_path(graph, 0, 5)

    def test_unknown_node_raises(self):
        graph = path_graph(3)
        with pytest.raises(NodeNotFoundError):
            dijkstra_shortest_path(graph, 0, 99)

    def test_directed_edges_respected(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        with pytest.raises(PathNotFoundError):
            dijkstra_shortest_path(graph, 1, 0)

    def test_settled_counter(self):
        graph = grid_graph(4, 4, seed=1)
        result = dijkstra_shortest_path(graph, 0, 15)
        assert 0 < result.settled <= 16


class TestSingleSourceDistances:
    def test_full_distances(self):
        graph = path_graph(5, weight_range=(2, 2))
        distances = single_source_distances(graph, 0)
        assert distances == {0: 0, 1: 2, 2: 4, 3: 6, 4: 8}

    def test_bounded_distances(self):
        graph = path_graph(5, weight_range=(2, 2))
        distances = single_source_distances(graph, 0, max_distance=4)
        assert distances == {0: 0, 1: 2, 2: 4}

    def test_unreachable_excluded(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_node(9)
        assert 9 not in single_source_distances(graph, 0)


class TestBidirectionalDijkstra:
    def test_simple_case(self):
        graph = grid_graph(4, 4, seed=3)
        expected = dijkstra_shortest_path(graph, 0, 15)
        result = bidirectional_dijkstra(graph, 0, 15)
        assert result.distance == expected.distance

    def test_source_equals_target(self):
        graph = path_graph(4)
        assert bidirectional_dijkstra(graph, 2, 2).distance == 0

    def test_unreachable(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_node(5)
        with pytest.raises(PathNotFoundError):
            bidirectional_dijkstra(graph, 0, 5)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_matches_unidirectional_on_random_graphs(self, seed):
        graph = random_graph(120, avg_degree=4.0, seed=seed)
        rng = random.Random(seed)
        nodes = sorted(graph.nodes())
        checked = 0
        while checked < 5:
            source, target = rng.choice(nodes), rng.choice(nodes)
            try:
                expected = dijkstra_shortest_path(graph, source, target)
            except PathNotFoundError:
                continue
            result = bidirectional_dijkstra(graph, source, target)
            assert abs(result.distance - expected.distance) < 1e-9
            # The returned path must be a real path of the reported length.
            total = sum(
                graph.edge_cost(a, b) for a, b in zip(result.path, result.path[1:])
            )
            assert abs(total - result.distance) < 1e-9
            checked += 1

    def test_settled_fewer_than_unidirectional_on_power_graph(self):
        """The motivation for bi-directional search: smaller search space."""
        graph = power_law_graph(400, edges_per_node=2, seed=9)
        rng = random.Random(1)
        nodes = sorted(graph.nodes())
        wins = 0
        trials = 0
        while trials < 8:
            source, target = rng.choice(nodes), rng.choice(nodes)
            if source == target:
                continue
            try:
                uni = dijkstra_shortest_path(graph, source, target)
            except PathNotFoundError:
                continue
            bi = bidirectional_dijkstra(graph, source, target)
            trials += 1
            if bi.settled <= uni.settled:
                wins += 1
        assert wins >= trials // 2


class TestBFS:
    def test_hop_distances(self):
        graph = path_graph(5)
        assert bfs_distances(graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_shortest_hop_path(self):
        graph = grid_graph(3, 3, seed=1)
        path = bfs_shortest_path(graph, 0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == 5  # 4 hops across a 3x3 grid

    def test_unreachable(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_node(7)
        with pytest.raises(PathNotFoundError):
            bfs_shortest_path(graph, 0, 7)

    def test_unknown_source(self):
        graph = path_graph(3)
        with pytest.raises(NodeNotFoundError):
            bfs_distances(graph, 99)
