"""Scatter-gather shard routing — two shards vs. one monolithic service.

Not a figure from the paper: the paper evaluates single-graph queries on
one engine, and this benchmark gates the PR-4 shard router that spreads
*many* named graphs across services.  Three ``db_path``-backed SQLite
graphs are cataloged onto two shards (one catalog each), then the same
mixed-graph batch runs twice:

* **monolith** — a single :class:`PathService` hosting all three graphs
  answers the batch (serially and with pooled workers);
* **router** — a :class:`~repro.shard.ShardRouter` opened over both
  catalogs scatter-gathers the batch: slices split by owning shard, fan
  out concurrently, and merge back in input order.

Results must be **bit-identical** between the two, at every concurrency
level — that is the hard gate, timing-free so it holds on any runner.
Besides the text report, the run writes
``benchmarks/results/shard_scatter.json`` (CI merges it into the
``bench-results`` artifact) with per-shard latency: each shard's
``BatchStats`` wall/queue/execute seconds plus the router rollup.
"""

import json
import os
import random

from repro.bench.harness import (
    RESULTS_DIR,
    format_table,
    paper_reference,
    scaled,
    write_report,
)
from repro.graph.generators import power_law_graph
from repro.service import PathService
from repro.shard import ShardRouter

NUM_QUERIES = 48
LTHD = 3.0
CONCURRENCY_LEVELS = (1, 4)

GRAPH_SPECS = (
    ("alpha", 0, 320, 23),
    ("beta", 1, 260, 29),
    ("gamma", 1, 300, 31),
)
"""(name, owning shard index, size, seed) for the three benchmark graphs."""


def _graphs():
    return {name: power_law_graph(scaled(size), edges_per_node=2, seed=seed)
            for name, _, size, seed in GRAPH_SPECS}


def _batch_queries(graphs, count, seed=11):
    """A mixed-graph batch in (graph, source, target) form."""
    rng = random.Random(seed)
    names = sorted(graphs)
    queries = []
    for _ in range(count):
        name = rng.choice(names)
        nodes = sorted(graphs[name].nodes())
        queries.append((name, rng.choice(nodes), rng.choice(nodes)))
    return queries


def _shapes(results):
    return [(None if r is None else (r.distance, tuple(r.path)))
            for r in results]


def _seed_catalogs(tmp_dir, graphs):
    """Catalog each graph onto its owning shard, SegTable included."""
    catalog_paths = [os.path.join(tmp_dir, "shard-a"),
                     os.path.join(tmp_dir, "shard-b")]
    for shard_index, catalog_path in enumerate(catalog_paths):
        with PathService(catalog_path=catalog_path, cache_size=0) as service:
            for name, owner, _, _ in GRAPH_SPECS:
                if owner != shard_index:
                    continue
                service.add_graph(
                    name, graphs[name], backend="sqlite",
                    db_path=os.path.join(catalog_path, f"{name}.db"))
                service.build_segtable(name, lthd=LTHD)
    return catalog_paths


def run_experiment(tmp_dir):
    graphs = _graphs()
    queries = _batch_queries(graphs, NUM_QUERIES)
    catalog_paths = _seed_catalogs(tmp_dir, graphs)

    # -- monolith: one service, all graphs, same stores-on-disk -------------------
    monolith_rows = []
    baseline_shapes = None
    with PathService(cache_size=0) as service:
        for name, _, _, _ in GRAPH_SPECS:
            service.add_graph(name, graphs[name], backend="sqlite",
                              db_path=os.path.join(tmp_dir, f"mono-{name}.db"))
            service.build_segtable(name, lthd=LTHD)
        for level in CONCURRENCY_LEVELS:
            batch = service.shortest_path_many(queries, concurrency=level)
            shapes = _shapes(batch.results)
            if baseline_shapes is None:
                baseline_shapes = shapes
            assert shapes == baseline_shapes, (
                f"monolith concurrency={level} changed results"
            )
            monolith_rows.append({
                "session": "monolith", "concurrency": level,
                "wall_s": round(batch.stats.total_time, 4),
                "executed": batch.stats.executed,
                "identical": True,
            })

    # -- router: two warm-started shards, scatter-gather --------------------------
    router_rows = []
    per_shard = {}
    identical = True
    last_scatter_stats = None
    with ShardRouter.open(catalog_paths=catalog_paths,
                          cache_size=0) as router:
        assert len(router.shards()) >= 2
        # Warm starts must adopt every persisted SegTable, never rebuild.
        for shard in router.shards():
            assert router.service(shard).segtable_builds == 0, (
                f"shard {shard!r} re-ran a SegTable construction on open"
            )
        for level in CONCURRENCY_LEVELS:
            scatter = router.shortest_path_many(queries, concurrency=level)
            shapes = _shapes(scatter.results)
            level_identical = shapes == baseline_shapes
            identical = identical and level_identical
            assert level_identical, (
                f"router concurrency={level} diverged from the monolith"
            )
            router_rows.append({
                "session": "router", "concurrency": level,
                "wall_s": round(scatter.stats.total_time, 4),
                "executed": scatter.stats.executed,
                "identical": level_identical,
            })
            per_shard[f"concurrency_{level}"] = {
                shard: {
                    "wall_s": round(stats.total_time, 4),
                    "queue_s": round(stats.queue_time, 4),
                    "execute_s": round(stats.execute_time, 4),
                    "queries": stats.total,
                    "executed": stats.executed,
                }
                for shard, stats in sorted(scatter.stats.per_shard.items())
            }
            last_scatter_stats = scatter.stats
        shards = router.shards()

    summary = {
        "shards": list(shards),
        "num_shards": len(shards),
        "identical": identical,
        "per_shard_latency": per_shard,
        "router_rollup": last_scatter_stats.rollup().as_dict(),
    }
    return monolith_rows + router_rows, summary


def _write_json(rows, summary):
    payload = {
        "benchmark": "shard_scatter",
        "backend": "sqlite (db_path-backed, one catalog per shard)",
        "num_queries": NUM_QUERIES,
        "lthd": LTHD,
        "concurrency_levels": list(CONCURRENCY_LEVELS),
        "sessions": rows,
        **summary,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "shard_scatter.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path, payload


def test_shard_scatter_matches_monolith(benchmark, tmp_path):
    rows, summary = benchmark.pedantic(
        run_experiment, args=(str(tmp_path),), rounds=1, iterations=1)
    _, payload = _write_json(rows, summary)
    write_report(
        "shard_scatter",
        paper_reference(
            "Not in the paper — PR-4 catalog-driven shard router",
            [
                "Three named graphs partitioned over two shard catalogs",
                "Router scatter-gathers a mixed batch by owning shard and "
                "merges in input order",
                "Results are bit-identical to one monolithic service at "
                "every concurrency level (asserted)",
                "Warm-started shards adopt persisted SegTables — zero "
                "constructions (asserted)",
            ],
        ),
        format_table(rows, title="Reproduced (48-query mixed batch)"),
    )
    # Hard gates, timing-free so they hold on any runner: >= 2 shards and
    # bit-identical answers to the single-service run.
    assert payload["num_shards"] >= 2
    assert payload["identical"]
    assert payload["per_shard_latency"], "per-shard latency must be reported"
