"""Figure 8(b) — query time vs buffer size (LiveJournal, BSEG(3)).

Paper: query time decreases roughly linearly as the buffer grows, then
flattens once the whole graph fits in memory (~6 GB for LiveJournal).  We
sweep the buffer pool of the mini engine (in pages) and additionally report
the buffer hit ratio, which is the mechanism behind the curve.
"""

from repro.bench.experiments import buffer_sweep
from repro.bench.harness import format_table, paper_reference, scaled, write_report
from repro.graph.datasets import livejournal_standin


def run_experiment():
    graph = livejournal_standin(num_nodes=scaled(900))
    return buffer_sweep(graph, [8, 32, 128, 1024], method="BSEG", lthd=3.0,
                        num_queries=2)


def test_fig8b_buffer_size(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig8b_buffer",
        paper_reference(
            "Figure 8(b) (LiveJournal, BSEG(3), buffer 1-7 GB)",
            [
                "Time decreases roughly linearly with the buffer size",
                "Beyond the point where the graph fits in memory the curve flattens",
            ],
        ),
        format_table(rows, title="Reproduced buffer-size sweep (pages)"),
    )
    assert rows[-1]["hit_ratio"] >= rows[0]["hit_ratio"]
    assert rows[-1]["buffer_misses"] <= rows[0]["buffer_misses"]
