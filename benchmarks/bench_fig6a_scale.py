"""Figure 6(a) — query time vs graph scale for BDJ and BSDJ on Power graphs.

Paper: both curves grow roughly linearly with the node count; BSDJ stays at
about 1/3 of BDJ's time across 20k-100k nodes.
"""

from repro.bench.experiments import build_power_graph, scaling_sweep
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    sizes = [scaled(300), scaled(600), scaled(900)]
    return scaling_sweep(sizes, build_power_graph, ["BDJ", "BSDJ"], num_queries=2)


def test_fig6a_query_time_vs_scale(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig6a_scale",
        paper_reference(
            "Figure 6(a) (Power graphs, BDJ vs BSDJ query time)",
            [
                "BDJ grows from 6.75 s (20k) to 15.1 s (100k)",
                "BSDJ grows from 2.9 s to 3.6 s — roughly 1/3 of BDJ everywhere",
            ],
        ),
        format_table(rows, title="Reproduced query time vs graph scale"),
    )
    for size in {row["nodes"] for row in rows}:
        series = {row["method"]: row["avg_time_s"] for row in rows if row["nodes"] == size}
        assert series["BSDJ"] <= series["BDJ"]
