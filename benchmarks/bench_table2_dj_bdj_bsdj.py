"""Table 2 — expansions and time of DJ vs BDJ vs BSDJ on Power graphs.

Paper: on Power20kN3d, DJ needs ~9601 expansions (425 s) while BDJ needs 182
(6.75 s) and BSDJ 68 (2.90 s); DJ is roughly 50x BDJ and 140x BSDJ in
expansion count.  We reproduce the ordering and the orders-of-magnitude gaps
on scaled-down Power graphs (DJ is only run on the smallest size, exactly as
the paper could not run it on the large graphs).
"""

from repro.bench.experiments import build_power_graph, method_comparison
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    rows = []
    sizes = [scaled(300), scaled(600)]
    for index, num_nodes in enumerate(sizes):
        graph = build_power_graph(num_nodes)
        methods = ["DJ", "BDJ", "BSDJ"] if index == 0 else ["BDJ", "BSDJ"]
        for aggregate in method_comparison(graph, methods, num_queries=2):
            rows.append(
                {
                    "nodes": num_nodes,
                    "method": aggregate.method,
                    "avg_exps": round(aggregate.avg_expansions, 1),
                    "avg_time_s": round(aggregate.avg_time, 4),
                    "avg_visited": round(aggregate.avg_visited, 1),
                }
            )
    return rows


def test_table2_dj_bdj_bsdj(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "table2_dj_bdj_bsdj",
        paper_reference(
            "Table 2 (Power graphs, # expansions and time)",
            [
                "DJ: 9601 expansions / 425 s at 20k nodes; >600 s beyond that",
                "BDJ: 182-414 expansions / 6.75-15.1 s from 20k to 100k nodes",
                "BSDJ: 68-88 expansions / 2.9-3.75 s — about 1/3 of BDJ's time",
                "Expected shape: Exps(DJ) >> Exps(BDJ) >= Exps(BSDJ); same for time",
            ],
        ),
        format_table(rows, title="Reproduced (scaled-down Power graphs)"),
    )
    by_method = {}
    smallest = min(row["nodes"] for row in rows)
    for row in rows:
        if row["nodes"] == smallest:
            by_method[row["method"]] = row["avg_exps"]
    assert by_method["BSDJ"] <= by_method["BDJ"] <= by_method["DJ"]
