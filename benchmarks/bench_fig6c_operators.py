"""Figure 6(c) — query time by FEM operator (F / E / M) for BSDJ.

Paper: the E-operator takes about 75% of the time because it joins the
frontier with the edge table; F and M are cheaper.
"""

from repro.bench.experiments import build_power_graph, operator_breakdown
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    graph = build_power_graph(scaled(700))
    operators = operator_breakdown(graph, method="BSDJ", num_queries=3)
    return [{"operator": name, "avg_time_s": round(seconds, 5)}
            for name, seconds in sorted(operators.items())]


def test_fig6c_operator_breakdown(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig6c_operators",
        paper_reference(
            "Figure 6(c) (BSDJ time by operator)",
            [
                "The E-operator takes ~75% of the time (join with the graph table)",
                "The F- and M-operators are comparatively cheap",
                "Scale caveat: on laptop-sized graphs the F-operator's TVisited scans "
                "are not amortized the way they are against a multi-million-row edge "
                "table, so F can rival E here; the E >= M relation still holds",
            ],
        ),
        format_table(rows, title="Reproduced per-operator time"),
    )
    times = {row["operator"]: row["avg_time_s"] for row in rows}
    assert times["E"] >= times["M"]
