"""Figure 9(g) — SegTable construction time vs buffer size.

Paper: a larger buffer shortens construction (0.6 GB takes about twice as
long as 1.6 GB); once the buffer exceeds the working set (~1.2 GB) the curve
flattens.  We sweep the mini engine's buffer pool and report the buffer hit
ratio alongside the time.
"""

from repro.bench.harness import format_table, paper_reference, scaled, write_report
from repro.core.api import RelationalPathFinder
from repro.graph.datasets import livejournal_standin


def run_experiment():
    graph = livejournal_standin(num_nodes=scaled(500))
    rows = []
    for capacity in (16, 64, 512):
        finder = RelationalPathFinder(graph, buffer_capacity=capacity)
        try:
            finder.store.database.reset_stats()  # type: ignore[attr-defined]
            stats = finder.build_segtable(lthd=3.0)
            buffer_stats = finder.store.database.buffer_stats  # type: ignore[attr-defined]
            rows.append(
                {
                    "buffer_pages": capacity,
                    "build_time_s": round(stats.total_time, 4),
                    "buffer_misses": buffer_stats.misses,
                    "hit_ratio": round(buffer_stats.hit_ratio, 3),
                }
            )
        finally:
            finder.close()
    return rows


def test_fig9g_construction_buffer(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig9g_buffer",
        paper_reference(
            "Figure 9(g) (LiveJournal, lthd=3, construction vs buffer 0.6-1.6 GB)",
            [
                "Larger buffers shorten construction; the curve flattens once the "
                "working set fits",
            ],
        ),
        format_table(rows, title="Reproduced construction vs buffer size (pages)"),
    )
    assert rows[-1]["hit_ratio"] >= rows[0]["hit_ratio"]
