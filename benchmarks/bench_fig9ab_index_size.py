"""Figures 9(a) and 9(b) — SegTable size (encoding number) vs lthd.

Paper: the index size grows with lthd on every graph; GoogleWeb is more
sensitive to lthd than DBLP because of its skewed degree distribution.
"""

from repro.bench.experiments import build_power_graph, construction_sweep
from repro.bench.harness import format_table, paper_reference, scaled, write_report
from repro.graph.datasets import dblp_standin, googleweb_standin


def run_experiment():
    graphs = {
        "power": build_power_graph(scaled(300)),
        "googleweb": googleweb_standin(num_nodes=scaled(300)),
        "dblp": dblp_standin(num_nodes=scaled(300)),
    }
    return construction_sweep(graphs, [5.0, 15.0, 30.0])


def test_fig9ab_index_size(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig9ab_index_size",
        paper_reference(
            "Figures 9(a)/9(b) (SegTable encoding number vs lthd)",
            [
                "Larger lthd => more pre-computed segments on every graph",
                "GoogleWeb grows faster with lthd than DBLP (degree skew)",
            ],
        ),
        format_table(rows, title="Reproduced SegTable size vs lthd"),
    )
    for graph_name in {row["graph"] for row in rows}:
        series = [row["segments"] for row in rows if row["graph"] == graph_name]
        assert series == sorted(series)
