"""Parallel batch execution — pooled SQLite readers vs. the serial engine.

Not a figure from the paper: the paper's operators are embarrassingly
parallel across source/target pairs, and this benchmark measures what the
PR-2 store-pool/executor subsystem buys on a multi-core machine.  A
64-query batch runs against a ``db_path``-backed SQLite store — the
backend whose pool grows by *cloning connections* over one database file,
and whose C-level query execution releases the GIL — once serially and
once per concurrency level, asserting bit-identical results every time.

Besides the usual text report, the run writes a machine-readable
``benchmarks/results/parallel_batch.json`` (CI uploads it as an artifact)
with per-level wall times, speedups, and the queue/execute split from the
extended ``BatchStats``.
"""

import json
import os
import random
from pathlib import Path

from repro.bench.harness import (
    RESULTS_DIR,
    format_table,
    paper_reference,
    scaled,
    write_report,
)
from repro.graph.generators import random_graph
from repro.service import PathService

CONCURRENCY_LEVELS = (2, 4, 8)
NUM_QUERIES = 64


def _batch_queries(graph, count, seed=7):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(count)]


def _shapes(batch):
    return [(None if r is None else (r.distance, tuple(r.path)))
            for r in batch.results]


def run_experiment(tmp_dir):
    # A fairly large graph keeps each query mostly inside sqlite's
    # GIL-releasing C code, which is what the threaded speedup depends on.
    graph = random_graph(scaled(600), avg_degree=3.0, seed=17)
    queries = _batch_queries(graph, NUM_QUERIES)
    rows = []
    with PathService(cache_size=0) as service:
        service.add_graph("bench", graph, backend="sqlite",
                          db_path=os.path.join(tmp_dir, "parallel_bench.db"))
        serial = service.shortest_path_many(queries, graph="bench")
        baseline_shapes = _shapes(serial)
        rows.append({
            "concurrency": 1,
            "wall_s": round(serial.stats.total_time, 4),
            "speedup": 1.0,
            "queue_s": 0.0,
            "execute_s": round(serial.stats.total_time, 4),
            "identical": True,
        })
        for level in CONCURRENCY_LEVELS:
            parallel = service.shortest_path_many(queries, graph="bench",
                                                  concurrency=level)
            identical = _shapes(parallel) == baseline_shapes
            assert identical, (
                f"concurrency={level} changed results vs. serial"
            )
            wall = parallel.stats.total_time
            rows.append({
                "concurrency": level,
                "wall_s": round(wall, 4),
                "speedup": round(serial.stats.total_time / wall, 2)
                if wall else float("inf"),
                "queue_s": round(parallel.stats.queue_time, 4),
                "execute_s": round(parallel.stats.execute_time, 4),
                "identical": identical,
            })
        pool = service.pool_stats("bench")
    return rows, {
        "replicas_cloned": pool.replicas_cloned,
        "replicas_rehydrated": pool.replicas_rehydrated,
        "pool_capacity": pool.capacity,
    }


def _write_json(rows, pool_info):
    payload = {
        "benchmark": "parallel_batch",
        "backend": "sqlite (db_path-backed, pool grows by connection clone)",
        "num_queries": NUM_QUERIES,
        "cpu_count": os.cpu_count(),
        "levels": rows,
        "pool": pool_info,
        "best_speedup": max(row["speedup"] for row in rows),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "parallel_batch.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path, payload


def test_parallel_batch_speedup(benchmark, tmp_path):
    rows, pool_info = benchmark.pedantic(
        run_experiment, args=(str(tmp_path),), rounds=1, iterations=1)
    _, payload = _write_json(rows, pool_info)
    write_report(
        "parallel_batch",
        paper_reference(
            "Not in the paper — PR-2 concurrency subsystem",
            [
                "DJ/BDJ/BSDJ/BSEG queries are independent across pairs",
                "Pool: one SQLite connection per worker over one db file",
                "Expected shape: wall time drops as concurrency rises on a "
                "multi-core host; results stay bit-identical",
                f"This host: {os.cpu_count()} cpu core(s)",
            ],
        ),
        format_table(rows, title="Reproduced (64-query batch, sqlite file)"),
    )
    # Results must match serial exactly at every level (asserted inside the
    # experiment too, before timings are even recorded).
    assert all(row["identical"] for row in rows)
    # The speedup claim needs real cores; a 1-core container can only show
    # correctness.  CI runners with 4+ cores enforce the bar (default 2x;
    # REPRO_BENCH_MIN_SPEEDUP tunes it for noisy shared runners).
    cpu_count = os.cpu_count() or 1
    if cpu_count >= 4:
        min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))
        assert payload["best_speedup"] >= min_speedup, (
            f"expected >= {min_speedup}x speedup on a {cpu_count}-core "
            f"host, got {payload['best_speedup']}x"
        )
