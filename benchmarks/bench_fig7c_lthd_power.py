"""Figure 7(c) — BSEG query time vs the index threshold lthd on Power graphs.

Paper: the performance first improves and then declines as lthd grows —
larger thresholds mean fewer expansions but a larger search space; on Power
graphs a relatively large lthd (~30) is best.
"""

from repro.bench.experiments import build_power_graph, lthd_sweep
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    graph = build_power_graph(scaled(500))
    return lthd_sweep(graph, [10.0, 30.0, 50.0], num_queries=2)


def test_fig7c_lthd_power(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig7c_lthd_power",
        paper_reference(
            "Figure 7(c) (Power graphs, BSEG vs lthd in {10, 30, 40, 50})",
            [
                "Query time improves and then declines as lthd grows",
                "A relatively large lthd (~30) suits Power graphs",
            ],
        ),
        format_table(rows, title="Reproduced lthd sweep (Power graph)"),
    )
    # Larger thresholds never need more expansions (Theorem 3's mechanism).
    assert rows[-1]["avg_exps"] <= rows[0]["avg_exps"]
