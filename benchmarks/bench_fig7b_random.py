"""Figure 7(b) — BBFS / BSDJ / BSEG(3,5,7) on Random graphs.

Paper: every BSEG variant beats BSDJ and BBFS on Random graphs (roughly 1/2
to 1/3 of their time); the different thresholds perform similarly, with a
mild optimum between 3 and 7.
"""

from repro.bench.experiments import build_random_graph, method_comparison
from repro.bench.harness import format_table, paper_reference, scaled, write_report
from repro.workloads.queries import generate_queries
from repro.workloads.runner import run_workload
from repro.core.api import RelationalPathFinder


def run_experiment():
    graph = build_random_graph(scaled(1200))
    workload = generate_queries(graph, 2, seed=0)
    rows = []
    for aggregate in method_comparison(graph, ["BBFS", "BSDJ"], num_queries=2):
        rows.append({"method": aggregate.method, "lthd": "-",
                     "avg_time_s": round(aggregate.avg_time, 4),
                     "avg_exps": round(aggregate.avg_expansions, 1)})
    # The paper's thresholds 3/5/7 are calibrated against multi-million-node
    # graphs; on scaled-down graphs the equivalent knob is a few multiples of
    # the average edge weight.
    for lthd in (10.0, 25.0, 40.0):
        finder = RelationalPathFinder(graph)
        try:
            finder.build_segtable(lthd)
            aggregate = run_workload(finder, workload, "BSEG")
            rows.append({"method": f"BSEG({int(lthd)})", "lthd": lthd,
                         "avg_time_s": round(aggregate.avg_time, 4),
                         "avg_exps": round(aggregate.avg_expansions, 1)})
        finally:
            finder.close()
    return rows


def test_fig7b_random_graphs(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig7b_random",
        paper_reference(
            "Figure 7(b) (Random graphs, BBFS/BSDJ/BSEG(3,5,7))",
            [
                "All BSEG thresholds outperform BSDJ and BBFS (1/2 to 1/3 of the time)",
                "The three thresholds 3/5/7 behave similarly",
            ],
        ),
        format_table(rows, title="Reproduced (scaled-down Random graph)"),
    )
    bsdj_exps = next(row["avg_exps"] for row in rows if row["method"] == "BSDJ")
    largest_threshold = max(
        (row for row in rows if str(row["method"]).startswith("BSEG")),
        key=lambda row: row["lthd"],
    )
    assert largest_threshold["avg_exps"] <= bsdj_exps * 1.1
