"""Figures 9(c) and 9(d) — SegTable construction time vs lthd.

Paper: construction time grows with lthd (longer segments need more
iterations), on both the synthetic Power graphs and the real graphs.
"""

from repro.bench.experiments import build_power_graph, construction_sweep
from repro.bench.harness import format_table, paper_reference, scaled, write_report
from repro.graph.datasets import dblp_standin


def run_experiment():
    graphs = {
        "power": build_power_graph(scaled(300)),
        "dblp": dblp_standin(num_nodes=scaled(300)),
    }
    return construction_sweep(graphs, [5.0, 15.0, 30.0])


def test_fig9cd_construction_time(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig9cd_construction",
        paper_reference(
            "Figures 9(c)/9(d) (SegTable construction time vs lthd)",
            [
                "Construction time increases with lthd",
                "The number of FEM iterations is bounded by lthd / w_min",
            ],
        ),
        format_table(rows, title="Reproduced construction time vs lthd"),
    )
    for graph_name in {row["graph"] for row in rows}:
        series = [row for row in rows if row["graph"] == graph_name]
        assert series[-1]["iterations"] >= series[0]["iterations"]
