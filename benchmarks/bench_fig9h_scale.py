"""Figure 9(h) — SegTable construction time vs graph size.

Paper: construction time grows almost linearly with the number of nodes on
LiveJournal subsets, because the index only encodes local shortest segments.
"""

from repro.bench.harness import format_table, paper_reference, scaled, write_report
from repro.core.api import RelationalPathFinder
from repro.graph.datasets import livejournal_standin


def run_experiment():
    rows = []
    for num_nodes in (scaled(300), scaled(600), scaled(900)):
        graph = livejournal_standin(num_nodes=num_nodes)
        finder = RelationalPathFinder(graph)
        try:
            stats = finder.build_segtable(lthd=3.0)
            rows.append(
                {
                    "nodes": num_nodes,
                    "edges": graph.num_edges,
                    "segments": stats.encoding_number,
                    "build_time_s": round(stats.total_time, 4),
                }
            )
        finally:
            finder.close()
    return rows


def test_fig9h_construction_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig9h_scale",
        paper_reference(
            "Figure 9(h) (LiveJournal subsets, lthd=3, construction vs graph size)",
            [
                "Construction time grows almost linearly with the graph size",
            ],
        ),
        format_table(rows, title="Reproduced construction time vs graph size"),
    )
    times = [row["build_time_s"] for row in rows]
    assert times[-1] >= times[0]
