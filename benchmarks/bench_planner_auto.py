"""Planner regret — ``method="auto"`` vs. every explicit method.

The PR-5 calibrated cost model claims ``auto`` is *measurably* fast, not
plausibly fast.  This gate holds it to that: the Table-2 smoke workloads
run under every explicit method and under ``auto`` on a calibrated
service, and per workload the **regret** is

    regret = auto_seconds / best_explicit_seconds - 1

The run writes ``benchmarks/results/planner_auto.json`` (merged into the
CI ``bench-results`` artifact) and asserts, for every workload, that
``auto`` either resolved to the method that measured fastest (timing noise
between two runs of the *same* method is not planner regret) or landed
within 15% of the best explicit time.

A second, timing-free gate covers the warm-start contract: persisting the
calibration profile and reopening the catalog reattaches a calibrated
planner with **zero** re-probing (``service.calibrations_run == 0``).
"""

import json
import os
import random
import time

from repro.bench.harness import (
    RESULTS_DIR,
    bench_backend,
    format_table,
    paper_reference,
    scaled,
    write_report,
)
from repro.graph.generators import grid_graph, power_law_graph
from repro.service import PathService

REGRET_LIMIT = 0.15
NUM_QUERIES = 6
ROUNDS = 3


def _workloads():
    """The Table-2 smoke set: one small grid (DJ territory), two Power
    graphs (BSDJ territory), one of them SegTable-equipped (BSEG)."""
    return [
        {"name": "grid_small", "graph": grid_graph(7, 7, seed=11),
         "methods": ["DJ", "BDJ", "BSDJ"], "lthd": None},
        {"name": "power_small",
         "graph": power_law_graph(scaled(240), edges_per_node=2, seed=7),
         "methods": ["DJ", "BDJ", "BSDJ"], "lthd": None},
        {"name": "power_indexed",
         "graph": power_law_graph(scaled(240), edges_per_node=2, seed=7),
         "methods": ["BDJ", "BSDJ", "BSEG"], "lthd": 25.0},
    ]


def _queries(graph, count, seed=13):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(count)]


def _timed_batch(service, queries, method):
    """Best-of-ROUNDS seconds for the whole workload under ``method``."""
    best = float("inf")
    resolved = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        batch = service.shortest_path_many(queries, graph="bench",
                                           method=method)
        best = min(best, time.perf_counter() - start)
        if batch.stats.per_method:
            resolved = max(batch.stats.per_method.items(),
                           key=lambda item: item[1])[0]
    return best, resolved


def run_experiment(tmp_dir):
    backend = bench_backend()
    rows = []
    for workload in _workloads():
        graph = workload["graph"]
        queries = _queries(graph, NUM_QUERIES)
        with PathService(default_backend=backend, cache_size=0) as service:
            service.add_graph("bench", graph)
            service.calibrate(backend)
            # Materialize the graph statistics up front so the explicit
            # sweeps below feed the runtime feedback loop — by the time
            # "auto" plans, the model has seen every method's real cost on
            # THIS workload (the adaptive closed loop under test).
            service.statistics("bench")
            if workload["lthd"] is not None:
                service.build_segtable("bench", lthd=workload["lthd"])
            explicit = {}
            for method in workload["methods"]:
                explicit[method], _ = _timed_batch(service, queries, method)
            auto_seconds, auto_method = _timed_batch(service, queries, "auto")
        best_method = min(explicit, key=explicit.get)
        regret = auto_seconds / explicit[best_method] - 1
        # Regret of the *choice* alone, judged on the explicit sweep's own
        # times: auto's wall clock runs last in the process and carries
        # noise that is not planner regret.
        choice_regret = (explicit[auto_method] / explicit[best_method] - 1
                         if auto_method in explicit else float("inf"))
        rows.append({
            "workload": workload["name"],
            "nodes": graph.num_nodes,
            **{f"{method.lower()}_s": round(seconds, 5)
               for method, seconds in explicit.items()},
            "auto_s": round(auto_seconds, 5),
            "auto_method": auto_method,
            "best_method": best_method,
            "regret": round(regret, 4),
            "choice_regret": round(choice_regret, 4),
            "within_limit": bool(regret <= REGRET_LIMIT
                                 or choice_regret <= REGRET_LIMIT
                                 or auto_method == best_method),
        })

    # Warm-start gate: the persisted profile reattaches with zero probes.
    catalog_dir = os.path.join(tmp_dir, "catalog")
    graph = power_law_graph(scaled(160), edges_per_node=2, seed=29)
    with PathService(catalog_path=catalog_dir,
                     default_backend="sqlite") as cold:
        cold.add_graph("warm", graph, backend="sqlite",
                       db_path=os.path.join(catalog_dir, "warm.db"))
        cold.calibrate("sqlite")
        cold_probes = cold.calibrations_run
    with PathService.open(catalog_dir) as warm:
        warm.explain(0, 40, graph="warm")  # planner runs on the profile...
        warm_probes = warm.calibrations_run  # ...without a single probe
        warm_calibrated = warm.cost_model("sqlite").profile.calibrated
    warm_start = {
        "cold_probes": cold_probes,
        "warm_probes": warm_probes,
        "warm_profile_calibrated": warm_calibrated,
    }
    return rows, warm_start


def _write_json(rows, warm_start, backend):
    payload = {
        "benchmark": "planner_auto",
        "backend": backend,
        "regret_limit": REGRET_LIMIT,
        "num_queries": NUM_QUERIES,
        "rounds": ROUNDS,
        "workloads": rows,
        "warm_start": warm_start,
        "max_regret": max(row["regret"] for row in rows),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "planner_auto.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path, payload


def test_planner_auto_regret(benchmark, tmp_path):
    rows, warm_start = benchmark.pedantic(
        run_experiment, args=(str(tmp_path),), rounds=1, iterations=1)
    _, payload = _write_json(rows, warm_start, bench_backend())
    write_report(
        "planner_auto",
        paper_reference(
            "Tables 2-3 context — PR-5 calibrated cost-based planner",
            [
                "The winning method depends on the graph and the backend",
                "auto prices DJ/BDJ/BSDJ/BSEG from measured unit costs",
                f"Gate: auto within {REGRET_LIMIT:.0%} of the best "
                f"explicit method (or it resolved to the measured best)",
                "Warm start reattaches the calibrated planner with zero "
                "re-probing (asserted)",
            ],
        ),
        format_table(rows, title="Planner regret per smoke workload"),
    )
    for row in rows:
        assert row["within_limit"], (
            f"workload {row['workload']}: auto ({row['auto_method']}, "
            f"{row['auto_s']}s) exceeds {REGRET_LIMIT:.0%} regret over "
            f"{row['best_method']} — regret {row['regret']:.1%}"
        )
    assert payload["warm_start"]["cold_probes"] == 1
    assert payload["warm_start"]["warm_probes"] == 0
    assert payload["warm_start"]["warm_profile_calibrated"]
