"""Figure 8(c) — index strategies: NoIndex vs non-clustered vs clustered.

Paper: the clustered unique index on TOutSegs(fid) / TVisited(nid) performs
best; the non-clustered index is second; no index is worst because the
E-operator join degenerates to repeated scans.
"""

from repro.bench.experiments import build_power_graph, index_mode_comparison
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    graph = build_power_graph(scaled(400))
    return index_mode_comparison(graph, method="BSEG", lthd=20.0, num_queries=2)


def test_fig8c_index_strategies(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig8c_index",
        paper_reference(
            "Figure 8(c) (Power graphs, BSEG(20), index strategies)",
            [
                "CluIndex (clustered + unique) is fastest",
                "Index (non-clustered) is second; NoIndex is slowest",
            ],
        ),
        format_table(rows, title="Reproduced index-strategy comparison"),
    )
    times = {row["index_strategy"]: row["avg_time_s"] for row in rows}
    assert times["CluIndex"] <= times["NoIndex"]
