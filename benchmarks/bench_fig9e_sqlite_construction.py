"""Figure 9(e) — SegTable construction on the second database platform.

Paper: construction behaviour on PostgreSQL matches DBMS-x (time grows with
lthd), proving the SegTable method is portable across engines.  SQLite plays
the PostgreSQL role.
"""

from repro.bench.experiments import build_power_graph, construction_sweep
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    graphs = {"power": build_power_graph(scaled(300))}
    return construction_sweep(graphs, [10.0, 20.0, 30.0], backend="sqlite")


def test_fig9e_construction_on_sqlite(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig9e_sqlite_construction",
        paper_reference(
            "Figure 9(e) (PostgreSQL, construction time vs lthd in {10,20,30})",
            [
                "The second platform shows the same trend as DBMS-x",
            ],
        ),
        format_table(rows, title="Reproduced construction on SQLite"),
    )
    sizes = [row["segments"] for row in rows]
    assert sizes == sorted(sizes)
