"""Figure 9(f) — SegTable construction with new vs traditional SQL features.

Paper: NSQL still beats TSQL for index construction, though by a smaller
margin than in query evaluation because the intermediate results are bounded
by lthd.
"""

from repro.bench.experiments import build_power_graph, construction_sweep
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    graph = build_power_graph(scaled(300))
    rows = []
    for style in ("nsql", "tsql"):
        rows.extend(construction_sweep({"power": graph}, [20.0], sql_style=style))
    return rows


def test_fig9f_construction_sql_features(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig9f_sql_features",
        paper_reference(
            "Figure 9(f) (Power graphs, lthd=20, construction NSQL vs TSQL)",
            [
                "NSQL construction outperforms TSQL, with a smaller gap than in queries",
            ],
        ),
        format_table(rows, title="Reproduced construction NSQL vs TSQL"),
    )
    by_style = {row["sql_style"]: row for row in rows}
    # Both styles must build the same index.
    assert by_style["nsql"]["segments"] == by_style["tsql"]["segments"]
