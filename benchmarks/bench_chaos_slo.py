"""Chaos SLO gate — Zipf traffic under seeded fault injection (PR 10).

Not a figure from the paper: this gate replays the PR-7 traffic shape
through a two-replica topology (one shard behind an admission-limited
:class:`~repro.serve.ShardServer`, one identical-fingerprint in-process
replica) while a seeded :class:`~repro.faults.FaultPlan` attacks the
remote client seam and an overload chaos hook slams the server with
request bursts.  The system under test must absorb all of it with its
production machinery — jittered client retries, router failover,
circuit breaker, typed load sheds — and the gates are:

1. **zero wrong answers** under faults: every answer is still checked
   against the in-memory differential reference, across a startup
   blackout (every remote attempt fails until the budgeted fault count
   is spent — the router must fail over to the replica), intermittent
   drops, and injected latency;
2. **zero unabsorbed errors**: retries + failover must swallow every
   injected fault — the stream's error count stays 0 even though the
   fault plan verifiably fired (``report.faults["fired"] > 0``);
3. **typed sheds under overload**: the burst hook drives the
   admission-limited server past ``max_inflight``/``max_queue`` and
   must observe at least one :class:`~repro.errors.ServerOverloadedError`
   carrying a ``retry_after`` hint;
4. **bounded latency**: p95 stays under a deliberately generous ceiling
   even with the chaos running (only pathological regressions trip it);
5. the wreckage is **visible in the metrics**: the server's ``/metrics``
   scrape shows ``repro_shed_total``, the router's registry shows
   ``repro_breaker_state``, the shard-health snapshot records the
   blackout's transport failures — and the whole story (fault firing
   record included) lands in ``benchmarks/results/chaos_slo.json``.

Everything is seeded — traffic stream, fault plan, client backoff,
failover cooldown jitter — so a failing run replays identically.
"""

import json
import os
import threading

from repro.bench.harness import (
    RESULTS_DIR,
    format_table,
    paper_reference,
    scaled,
    write_report,
)
from repro.errors import ReproError, ServerOverloadedError
from repro.faults import FaultPlan, FaultSpec, KIND_ERROR, install_client_faults, slow
from repro.graph.generators import power_law_graph
from repro.obs import MetricsRegistry
from repro.serve import ShardClient, ShardServer
from repro.service import PathService
from repro.service.planner import QuerySpec
from repro.shard import ShardRouter, ShardSpec
from repro.workload import SLO, TrafficConfig, TrafficGenerator, run_traffic

NUM_QUERIES = 600
"""Never scaled down: the gate's statement is about sustained chaos."""

LTHD = 3.0
P95_SLO_MS = 1000.0
"""Twice the clean-traffic ceiling: chaos inflates tails (retries,
backoff, failover round trips) by design, but boundedly."""

FAULT_SEED = 97
BACKOFF_SEED = 11
COOLDOWN_SEED = 23
BLACKOUT_ATTEMPTS = 3
"""Remote attempts that fail unconditionally at run start — exactly the
first query's transport budget (1 try + 2 retries), so query 0
deterministically fails over to the replica and trips the breaker open;
the budget is spent before the breaker's first re-probe, which then
re-closes it."""

BURST_EVERY = 150
BURST_THREADS = 8
"""Overload chaos: every ``BURST_EVERY`` queries, this many concurrent
zero-retry requests hit the admission-limited server at once."""

TRAFFIC = TrafficConfig(
    seed=777,
    zipf_s=1.1,
    hot_pairs=12,
    cold_fraction=0.15,
    kind_mix={"path": 0.6, "reachability": 0.25, "bounded_hop": 0.15},
    graph_weights={"social": 1.0},
    max_hops_range=(2, 5),
)


def _graphs():
    return {"social": power_law_graph(scaled(240), edges_per_node=2, seed=37)}


def _seed_catalog(catalog_path, graphs):
    with PathService(catalog_path=catalog_path, cache_size=0) as service:
        for name, graph in graphs.items():
            service.add_graph(
                name, graph, backend="sqlite",
                db_path=os.path.join(catalog_path, f"{name}.db"))
            service.build_segtable(name, lthd=LTHD)


def _fault_plan():
    """The seeded attack on the remote client seam: a startup blackout
    (every attempt fails until spent), then intermittent drops the
    retries must absorb, plus probabilistic injected latency."""
    return FaultPlan([
        FaultSpec(kind=KIND_ERROR, probability=1.0, times=BLACKOUT_ATTEMPTS,
                  match="client./shortest_path"),
        FaultSpec(kind=KIND_ERROR, probability=0.02, times=None,
                  match="client./shortest_path"),
        slow(0.002, probability=0.15, match="client."),
    ], seed=FAULT_SEED)


def _burst(server_url, shed_counter):
    """Slam the server with concurrent zero-retry queries; count the
    typed sheds (anything else the burst provokes is ignored — the
    routed stream, not the burst, is what the SLO grades)."""
    barrier = threading.Barrier(BURST_THREADS)

    def one_shot():
        client = ShardClient(server_url, retries=0)
        barrier.wait()
        try:
            client.shortest_path(QuerySpec(source=0, target=1,
                                           graph="social"))
        except ServerOverloadedError as exc:
            with shed_counter["lock"]:
                shed_counter["sheds"] += 1
                if exc.retry_after is not None:
                    shed_counter["hints"] += 1
        except ReproError:
            pass

    threads = [threading.Thread(target=one_shot)
               for _ in range(BURST_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def run_experiment(tmp_dir):
    graphs = _graphs()
    primary_catalog = os.path.join(tmp_dir, "primary")
    replica_catalog = os.path.join(tmp_dir, "replica")
    _seed_catalog(primary_catalog, graphs)
    _seed_catalog(replica_catalog, graphs)

    primary_service = PathService.open(primary_catalog, shard_id="primary")
    server = ShardServer(primary_service, port=0, own_service=True,
                         max_inflight=2, max_queue=1,
                         shed_retry_after=0.01).start()
    remote_name = f"{server.host}:{server.port}"
    registry = MetricsRegistry()
    plan = _fault_plan()
    shed_counter = {"sheds": 0, "hints": 0, "lock": threading.Lock()}
    try:
        specs = [
            ShardSpec(name=remote_name, catalog_path=server.url,
                      transport="remote",
                      service_options={"retries": 2,
                                       "backoff_seed": BACKOFF_SEED}),
            ShardSpec(name="replica", catalog_path=replica_catalog),
        ]
        scrapes = {}
        with ShardRouter.open(specs=specs, registry=registry,
                              cooldown_seed=COOLDOWN_SEED) as router:
            install_client_faults(router.transport(remote_name).client, plan)

            def chaos(index):
                if index == 1:
                    # Query 0 just burned the whole blackout budget and
                    # failed over: the breaker is open *right now* —
                    # scrape the trip while it is visible.
                    scrapes["router_blackout"] = \
                        router.registry.render_prometheus()
                if index and index % BURST_EVERY == 0:
                    _burst(server.url, shed_counter)

            generator = TrafficGenerator(
                TRAFFIC, {"social": graphs["social"].nodes()})
            report = run_traffic(router, generator, NUM_QUERIES,
                                 reference=graphs, chaos=chaos,
                                 fault_plan=plan, registry=registry)
            health = router.shard_health()
            scrapes[remote_name] = ShardClient(server.url).metrics_text()
            scrapes["router"] = router.registry.render_prometheus()
    finally:
        server.close()

    slo = SLO(p95_ms=P95_SLO_MS, max_error_rate=0.0, max_wrong_answers=0)
    met = slo.apply(report)
    rows = [{
        "outcome": "answered", "count": report.total - report.errors,
    }, {
        "outcome": "injected faults fired", "count": report.faults["fired"],
    }, {
        "outcome": "remote transport failures", "count":
            health[remote_name]["errors"],
    }, {
        "outcome": "overload sheds (burst)", "count": shed_counter["sheds"],
    }, {
        "outcome": "wrong answers", "count": report.wrong_answers,
    }]
    return rows, report, met, remote_name, health, scrapes, shed_counter


def _write_json(report, met, remote_name, health, scrapes, shed_counter):
    payload = {
        "benchmark": "chaos_slo",
        "backend": "sqlite (admission-limited HTTP shard + local replica)",
        "num_queries": NUM_QUERIES,
        "lthd": LTHD,
        "shards": [remote_name, "replica"],
        "slo_met": met,
        "fault_seed": FAULT_SEED,
        "blackout_attempts": BLACKOUT_ATTEMPTS,
        "burst_sheds": shed_counter["sheds"],
        "burst_shed_hints": shed_counter["hints"],
        "shard_health": health,
        "metrics_scrapes": scrapes,
        **report.as_dict(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "chaos_slo.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path, payload


def test_chaos_meets_slo(benchmark, tmp_path):
    rows, report, met, remote_name, health, scrapes, shed_counter = \
        benchmark.pedantic(
            run_experiment, args=(str(tmp_path),), rounds=1, iterations=1)
    _, payload = _write_json(report, met, remote_name, health, scrapes,
                             shed_counter)
    write_report(
        "chaos_slo",
        paper_reference(
            "Not in the paper — PR-10 chaos gate: faults, overload, SLO",
            [
                f"{NUM_QUERIES} Zipf queries (seed {TRAFFIC.seed}) against "
                f"a replicated pair, remote seam under seeded fault plan",
                f"Startup blackout of {BLACKOUT_ATTEMPTS} remote attempts "
                f"forces failover; intermittent drops absorbed by retries",
                f"Overload bursts ({BURST_THREADS} concurrent, every "
                f"{BURST_EVERY} queries) against max_inflight=2 admission",
                "Gates: zero wrong answers, zero unabsorbed errors, typed "
                "retryable sheds observed, p95 bounded, all visible in "
                "/metrics",
            ],
        ),
        format_table(rows, title=f"Reproduced ({NUM_QUERIES}-query chaos "
                                 f"run, outcome ledger)"),
    )
    # Gate 1+2: correctness and absorption — hard, runner-independent.
    assert payload["total"] == NUM_QUERIES
    assert payload["wrong_answers"] == 0, payload["wrong_samples"]
    assert payload["errors"] == 0, payload["error_samples"]
    assert payload["slo_met"], payload["slo"]["violations"]
    # The chaos verifiably happened: the blackout budget was fully spent
    # (query 0's three attempts, exactly), and the router recorded the
    # resulting transport failure as a real failover.
    assert payload["faults"]["per_spec"][0] == BLACKOUT_ATTEMPTS
    assert payload["faults"]["fired"] >= BLACKOUT_ATTEMPTS
    assert payload["shard_health"][remote_name]["errors"] >= 1, \
        "the blackout must surface as transport failures at the router"
    # Gate 3: overload chaos produced typed, hinted sheds.
    assert payload["burst_sheds"] > 0, "bursts never overloaded the server"
    assert payload["burst_shed_hints"] == payload["burst_sheds"], \
        "every shed must carry a retry_after hint"
    # Gate 5: the wreckage is scrape-visible — the sheds on the server's
    # /metrics, the breaker trip caught open (gauge 2) mid-blackout.
    assert "repro_shed_total" in payload["metrics_scrapes"][remote_name]
    assert "repro_breaker_state" in payload["metrics_scrapes"]["router"]
    blackout_scrape = payload["metrics_scrapes"]["router_blackout"]
    assert f'repro_breaker_state{{shard="{remote_name}"}} 2' \
        in blackout_scrape, "the breaker trip must be scrape-visible"
    for text in payload["metrics_scrapes"].values():
        assert "# TYPE" in text
