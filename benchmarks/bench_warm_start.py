"""Warm-start sessions — catalog reattach vs. cold load + SegTable build.

Not a figure from the paper, but measured against one: Figure 9 shows the
SegTable's offline construction cost growing sharply with ``lthd``, which
is exactly the cost the PR-3 persistent catalog amortizes across
processes.  The experiment runs the same ``db_path``-backed SQLite graph
twice:

* **cold** — a catalog-bound service loads the graph (bulk insert + index
  build), constructs the SegTable, and answers a query batch; graph,
  statistics, and index metadata are persisted to the catalog as a side
  effect;
* **warm** — a fresh ``PathService.open(catalog_path=...)`` reattaches
  from the manifest: no edge reload, no statistics rescan, and — asserted,
  not just measured — **zero SegTable constructions**
  (``service.segtable_builds == 0``), then answers the same batch.

Results must be bit-identical across the two sessions.  Besides the text
report, the run writes ``benchmarks/results/warm_start.json`` (CI uploads
it as an artifact) with the cold/warm phase timings.
"""

import json
import os
import random
import time

from repro.bench.harness import (
    RESULTS_DIR,
    format_table,
    paper_reference,
    scaled,
    write_report,
)
from repro.graph.generators import power_law_graph
from repro.service import PathService

NUM_QUERIES = 24
LTHD = 4.0


def _batch_queries(graph, count, seed=7):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(count)]


def _shapes(batch):
    return [(None if r is None else (r.distance, tuple(r.path)))
            for r in batch.results]


def run_experiment(tmp_dir):
    catalog_dir = os.path.join(tmp_dir, "catalog")
    graph = power_law_graph(scaled(300), edges_per_node=2, seed=23)
    queries = _batch_queries(graph, NUM_QUERIES)

    # -- cold session: load, build, persist, query --------------------------------
    cold = {}
    with PathService(catalog_path=catalog_dir, cache_size=0) as service:
        start = time.perf_counter()
        service.add_graph("warmbench", graph, backend="sqlite",
                          db_path=os.path.join(catalog_dir, "warmbench.db"))
        cold["load_s"] = time.perf_counter() - start
        build = service.build_segtable("warmbench", lthd=LTHD)
        cold["segtable_build_s"] = build.total_time
        cold["segments"] = build.encoding_number
        start = time.perf_counter()
        baseline = service.shortest_path_many(queries, graph="warmbench")
        cold["batch_s"] = time.perf_counter() - start
        baseline_shapes = _shapes(baseline)
        assert service.segtable_builds == 1

    # -- warm session: reattach from the catalog, query ---------------------------
    warm = {}
    start = time.perf_counter()
    with PathService.open(catalog_dir, cache_size=0) as service:
        warm["open_s"] = time.perf_counter() - start
        # The acceptance assertions: the persisted SegTable was adopted,
        # never rebuilt, and the reattached graph answers identically.
        assert service.segtable_builds == 0, (
            "warm reattach must not re-run the SegTable construction"
        )
        stats = service.segtable_stats("warmbench")
        assert stats is not None and stats.encoding_number == cold["segments"]
        assert service.store("warmbench").has_segtable
        start = time.perf_counter()
        replay = service.shortest_path_many(queries, graph="warmbench")
        warm["batch_s"] = time.perf_counter() - start
        identical = _shapes(replay) == baseline_shapes
        assert identical, "warm-started session changed query results"
        # Still zero builds after the batch (BSEG ran on the adopted index).
        assert service.segtable_builds == 0
        warm["segtable_builds"] = service.segtable_builds

    rows = [
        {"session": "cold", "graph_setup_s": round(cold["load_s"], 4),
         "segtable_s": round(cold["segtable_build_s"], 4),
         "batch_s": round(cold["batch_s"], 4), "rebuilds": 1,
         "identical": True},
        {"session": "warm", "graph_setup_s": round(warm["open_s"], 4),
         "segtable_s": 0.0, "batch_s": round(warm["batch_s"], 4),
         "rebuilds": warm["segtable_builds"], "identical": identical},
    ]
    saved = cold["load_s"] + cold["segtable_build_s"] - warm["open_s"]
    summary = {
        "cold": cold,
        "warm": warm,
        "segments": cold["segments"],
        "setup_seconds_saved": round(saved, 4),
        "identical": identical,
    }
    return rows, summary


def _write_json(rows, summary):
    payload = {
        "benchmark": "warm_start",
        "backend": "sqlite (db_path-backed, catalog-persisted SegTable)",
        "num_queries": NUM_QUERIES,
        "lthd": LTHD,
        "sessions": rows,
        **summary,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "warm_start.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path, payload


def test_warm_start_skips_segtable_construction(benchmark, tmp_path):
    rows, summary = benchmark.pedantic(
        run_experiment, args=(str(tmp_path),), rounds=1, iterations=1)
    _, payload = _write_json(rows, summary)
    write_report(
        "warm_start",
        paper_reference(
            "Figure 9 context — PR-3 persistent catalog",
            [
                "SegTable construction cost grows sharply with lthd (Fig 9)",
                "Cold: load graph + build SegTable + persist to catalog",
                "Warm: PathService.open() reattaches via the manifest — no "
                "edge reload, zero SegTable constructions (asserted)",
                "Query results are bit-identical across sessions (asserted)",
            ],
        ),
        format_table(rows, title="Reproduced (cold vs. warm session)"),
    )
    # Hard gates (timing-free, so they hold on any runner): the warm
    # session never ran the offline construction and answered identically.
    assert payload["identical"]
    assert payload["warm"]["segtable_builds"] == 0
