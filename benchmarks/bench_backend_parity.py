"""Backend parity — embedded SQLite vs. the client-server DB-API store.

Not a paper figure, but the experiment behind the paper's core claim of
portability: the FEM framework runs *inside an unmodified RDBMS*, so the
same statements must produce the same answers whichever engine hosts the
tables.  The run answers one query batch (DJ and, over a built SegTable,
BSEG) twice — once on the embedded SQLite store and once on the generic
DB-API store speaking the stdlib wire protocol to the fallback server —
and asserts the results are bit-identical.

Each backend is then calibrated with the real probe
(:func:`repro.service.calibrate.calibrate_profile`), putting numbers on
what the wire costs: the per-statement overhead dominates on the
client-server backend while per-row costs stay comparable, which is
exactly the regime the paper's set-at-a-time methods (BSDJ/BSEG) are
designed for.  Besides the text report, the run writes
``benchmarks/results/backend_parity.json`` (CI merges it into the
``bench-results`` artifact) with the parity verdict and the per-backend
calibrated unit costs.
"""

import json
import random
import time

from repro.bench.harness import (
    RESULTS_DIR,
    format_table,
    paper_reference,
    scaled,
    write_report,
)
from repro.graph.generators import power_law_graph
from repro.service import PathService
from repro.service.calibrate import calibrate_profile
from repro.store import serve_in_thread

NUM_QUERIES = 18
LTHD = 4.0
PROBE_NODES = 80


def _batch_queries(graph, count, seed=11):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(count)]


def _shapes(batch):
    return [(None if r is None else (r.distance, tuple(r.path)))
            for r in batch.results]


def _run_backend(backend, db_path, graph, queries):
    timings = {}
    shapes = {}
    with PathService(default_backend=backend, cache_size=0) as service:
        start = time.perf_counter()
        service.add_graph("parity", graph, backend=backend, db_path=db_path,
                          persist=False)
        timings["load_s"] = time.perf_counter() - start
        for method in ("DJ", "BSEG"):
            if method == "BSEG":
                build = service.build_segtable("parity", lthd=LTHD)
                timings["segtable_build_s"] = build.total_time
            start = time.perf_counter()
            batch = service.shortest_path_many(queries, graph="parity",
                                               method=method)
            timings[f"batch_{method.lower()}_s"] = time.perf_counter() - start
            shapes[method] = _shapes(batch)
    return timings, shapes


def run_experiment():
    graph = power_law_graph(scaled(240), edges_per_node=2, seed=31)
    queries = _batch_queries(graph, NUM_QUERIES)

    with serve_in_thread() as server:
        sqlite_t, sqlite_shapes = _run_backend("sqlite", None, graph, queries)
        dsn = f"{server.dsn}?table_prefix=parity_"
        dbapi_t, dbapi_shapes = _run_backend("dbapi", dsn, graph, queries)

        identical = all(sqlite_shapes[m] == dbapi_shapes[m]
                        for m in ("DJ", "BSEG"))

        profiles = {}
        for backend, store_path in (("sqlite", None), ("dbapi", dsn)):
            profile = calibrate_profile(backend, probe_nodes=PROBE_NODES,
                                        queries_per_method=2, repeats=2,
                                        store_path=None if store_path is None
                                        else f"{server.dsn}"
                                             f"?table_prefix=paritycal_")
            profiles[backend] = {
                "statement_cost_s": profile.statement_cost,
                "scan_row_cost_s": profile.scan_row_cost,
                "row_cost_s": profile.row_cost,
                "seg_row_cost_s": profile.seg_row_cost,
                "seg_build_row_cost_s": profile.seg_build_row_cost,
                "probe_seconds": profile.probe_seconds,
            }

    rows = []
    for backend, timings in (("sqlite", sqlite_t), ("dbapi", dbapi_t)):
        rows.append({
            "backend": backend,
            "load_s": round(timings["load_s"], 4),
            "segtable_s": round(timings["segtable_build_s"], 4),
            "batch_dj_s": round(timings["batch_dj_s"], 4),
            "batch_bseg_s": round(timings["batch_bseg_s"], 4),
            "stmt_cost_us": round(profiles[backend]["statement_cost_s"] * 1e6,
                                  2),
            "identical": identical,
        })
    summary = {"identical": identical, "profiles": profiles,
               "num_queries": NUM_QUERIES}
    return rows, summary


def _write_json(rows, summary):
    payload = {
        "benchmark": "backend_parity",
        "backends": ["sqlite", "dbapi (stdlib fallback wire server)"],
        "lthd": LTHD,
        "legs": rows,
        **summary,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "backend_parity.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path, payload


def test_backend_parity_bit_identical(benchmark):
    rows, summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    _, payload = _write_json(rows, summary)
    write_report(
        "backend_parity",
        paper_reference(
            "Section 3 context — FEM inside an unmodified RDBMS",
            [
                "Same FEM statements, two engines: embedded SQLite vs. the",
                "client-server DB-API store over the stdlib wire server",
                "DJ and BSEG batch answers are bit-identical (asserted)",
                "Per-backend unit costs calibrated with the real probe; the",
                "wire adds per-statement overhead, favoring set-at-a-time",
            ],
        ),
        format_table(rows, title="Reproduced (backend parity)"),
    )
    # Hard gates (timing-free, so they hold on any runner).
    assert payload["identical"], "backends disagreed on query results"
    for backend, profile in payload["profiles"].items():
        assert profile["statement_cost_s"] > 0, backend
