"""Table 1 — statistics of the graph data sets.

The paper's Table 1 lists node/edge counts of DBLP, GoogleWeb, LiveJournal
and the synthetic Random / Power families.  We report the paper's original
counts next to the scaled-down stand-ins actually used in this reproduction.
"""

from repro.bench.harness import bench_scale, format_table, paper_reference, write_report
from repro.graph.datasets import dataset_statistics


def build_rows():
    scale = bench_scale() / 1000.0
    return dataset_statistics(scale=scale)


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    write_report(
        "table1_datasets",
        paper_reference(
            "Table 1 (dataset statistics)",
            [
                "DBLP: 312,967 nodes / 1,149,663 edges",
                "GoogleWeb: 855,802 nodes / 5,066,842 edges",
                "LiveJournal: 4,847,571 nodes / 43,110,428 edges",
                "Stand-ins keep the average degree and degree skew at ~1/1000 scale",
            ],
        ),
        format_table(rows, title="Reproduced dataset stand-ins"),
    )
    assert len(rows) == 3
