"""Figure 6(d) — new SQL features (window function + MERGE) vs traditional SQL.

Paper: the NSQL variant outperforms the TSQL variant significantly for BSDJ
path finding on Power graphs.
"""

from repro.bench.experiments import build_power_graph, sql_style_comparison
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    graph = build_power_graph(scaled(700))
    return sql_style_comparison(graph, method="BSDJ", num_queries=3)


def test_fig6d_sql_features(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig6d_sql_features",
        paper_reference(
            "Figure 6(d) (BSDJ, NSQL vs TSQL)",
            [
                "NSQL (window function + MERGE) is significantly faster than TSQL",
                "TSQL needs an extra join in the E-operator and two statements for M",
            ],
        ),
        format_table(rows, title="Reproduced NSQL vs TSQL (query evaluation)"),
    )
    stats = {row["sql_features"]: row for row in rows}
    assert stats["NSQL"]["avg_stmts"] <= stats["TSQL"]["avg_stmts"]
