"""Table 3 — time, expansions and visited nodes of BSDJ / BBFS / BSEG(5) on
Random graphs.

Paper (Random 5M-20M nodes): BBFS takes the fewest expansions (~30) but
visits by far the most nodes (129k-358k); BSDJ takes the most expansions
(174-197) with the smallest visited set (3.6k-7.4k); BSEG(5) sits in between
on both axes and has the lowest time.  We reproduce the ordering of the Exps
and Vst columns on scaled-down Random graphs.
"""

from repro.bench.experiments import build_random_graph, method_comparison
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    rows = []
    # The paper builds the SegTable with lthd=5 over weights in [1,100] on
    # multi-million-node graphs; at laptop scale the equivalent knob is a few
    # multiples of the average edge weight.
    for num_nodes in (scaled(800), scaled(1600)):
        graph = build_random_graph(num_nodes)
        for aggregate in method_comparison(graph, ["BSDJ", "BBFS", "BSEG"],
                                           num_queries=2, lthd=30.0):
            rows.append(
                {
                    "nodes": num_nodes,
                    "method": aggregate.method,
                    "avg_time_s": round(aggregate.avg_time, 4),
                    "avg_exps": round(aggregate.avg_expansions, 1),
                    "avg_visited": round(aggregate.avg_visited, 1),
                }
            )
    return rows


def test_table3_random_graphs(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "table3_random_graphs",
        paper_reference(
            "Table 3 (Random graphs; Time / Exps / Vst)",
            [
                "BBFS: fewest expansions (30-34) but 129k-358k visited nodes",
                "BSDJ: most expansions (174-197), smallest visited set (3.6k-7.4k)",
                "BSEG(5): ~1/3 of BSDJ's expansions, slightly more visited nodes, fastest",
                "Expected shape: Exps(BBFS) <= Exps(BSEG) <= Exps(BSDJ); "
                "Vst(BSDJ) <= Vst(BSEG) <= Vst(BBFS)",
            ],
        ),
        format_table(rows, title="Reproduced (scaled-down Random graphs)"),
    )
    largest = max(row["nodes"] for row in rows)
    stats = {row["method"]: row for row in rows if row["nodes"] == largest}
    assert stats["BBFS"]["avg_exps"] <= stats["BSEG"]["avg_exps"] * 1.1
    assert stats["BSEG"]["avg_exps"] <= stats["BSDJ"]["avg_exps"] * 1.1
    assert stats["BSDJ"]["avg_visited"] <= stats["BBFS"]["avg_visited"]
