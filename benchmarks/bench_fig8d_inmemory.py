"""Figure 8(d) — the relational BSEG vs the in-memory MDJ and MBDJ.

Paper: the in-memory bi-directional Dijkstra (MBDJ) is the fastest; BSEG is
slower than MBDJ but beats the in-memory single-directional MDJ at scale and
scales better.  A pure-Python relational engine cannot beat a pure-Python
heap Dijkstra in absolute time, so the reproduced claim is the ordering of
MBDJ vs MDJ and the fact that BSEG's search statistics (expansions, visited
nodes) stay small and stable as the graph grows.
"""

from repro.bench.experiments import build_power_graph, method_comparison
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    rows = []
    for num_nodes in (scaled(400), scaled(800)):
        graph = build_power_graph(num_nodes)
        for aggregate in method_comparison(graph, ["BSEG", "MDJ", "MBDJ"],
                                           num_queries=3, lthd=20.0):
            rows.append(
                {
                    "nodes": num_nodes,
                    "method": aggregate.method,
                    "avg_time_s": round(aggregate.avg_time, 5),
                    "avg_visited": round(aggregate.avg_visited, 1),
                }
            )
    return rows


def test_fig8d_vs_inmemory(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig8d_inmemory",
        paper_reference(
            "Figure 8(d) (Power graphs, BSEG(20) vs MDJ vs MBDJ, 1.5 GB memory)",
            [
                "MBDJ is fastest; BSEG outperforms MDJ and scales better",
                "The RDB approach trades raw speed for scalability and stability",
            ],
        ),
        format_table(rows, title="Reproduced relational vs in-memory comparison"),
    )
    largest = max(row["nodes"] for row in rows)
    stats = {row["method"]: row for row in rows if row["nodes"] == largest}
    # MBDJ explores no more nodes than MDJ; BSEG's visited set stays modest.
    assert stats["MBDJ"]["avg_visited"] <= stats["MDJ"]["avg_visited"]
