"""Benchmark harness: one module per table / figure of the paper's evaluation.

Run with ``pytest benchmarks/ --benchmark-only``.  Every module writes its
reproduced table (plus the paper's reference behaviour) to
``benchmarks/results/<name>.txt`` and registers one pytest-benchmark timing
for the representative operation it measures.

Graph sizes are scaled down from the paper's setup (see DESIGN.md §2);
``REPRO_BENCH_SCALE`` and ``REPRO_BENCH_QUERIES`` enlarge the runs.
"""
