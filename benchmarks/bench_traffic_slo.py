"""Zipf traffic load test with SLO regression gates — the PR-7 bench.

Not a figure from the paper: this gate runs production-shaped traffic
(seeded Zipf-skewed pairs, mixed ``path`` / ``bounded_hop`` /
``reachability`` read mix) through a real two-shard topology — one shard
behind a :class:`~repro.serve.ShardServer` HTTP boundary, one in-process
— and grades the run like an SRE dashboard would.  The hard gates, all
correctness-based (the latency SLO is deliberately generous so it only
trips on pathological regressions, never on a slow CI runner):

1. **zero wrong answers**: every one of the >= 1000 answers is checked
   against the in-memory differential reference (Dijkstra for ``path``,
   BFS layers for the hop kinds) — across both shards, all three kinds,
   and the HTTP transport;
2. the declared SLO (p95 latency, zero errors, zero wrong answers) is
   **met**, and the verdict is stamped into the artifact;
3. the traffic stream is **seed-deterministic** (same config, same
   queries — byte for byte), so any failing run is reproducible;
4. latency percentiles (p50/p95/p99, overall and per kind) plus cache
   and shard-health snapshots land in
   ``benchmarks/results/traffic_slo.json`` for the consolidated
   ``bench-results`` CI artifact;
5. the verdict's percentiles come from the **metrics registry's
   histograms** (the harness publishes every query into
   ``repro_traffic_latency_ms``), both shards' ``/metrics`` Prometheus
   text is scraped at end of run into the artifact, and the
   instrumentation overhead (one counter + one histogram + one timer
   per query) is micro-benchmarked and asserted <= 5% of the mean
   query latency.
"""

import json
import os

from repro.bench.harness import (
    RESULTS_DIR,
    format_table,
    paper_reference,
    scaled,
    write_report,
)
from repro.graph.generators import power_law_graph, random_graph
from repro.obs import MetricsRegistry, timer
from repro.obs.schema import METRIC_TRAFFIC_LATENCY_MS, METRIC_TRAFFIC_QUERIES
from repro.serve import ShardClient, ShardServer
from repro.service import PathService
from repro.shard import ShardRouter
from repro.workload import SLO, TrafficConfig, TrafficGenerator, run_traffic

NUM_QUERIES = 1000
"""Never scaled down: the gate's statement is about sustained traffic."""

LTHD = 3.0
P95_SLO_MS = 500.0
"""Generous on purpose: localhost round trips against small sqlite
graphs sit far below this, so only a pathological regression trips it."""

GRAPH_SPECS = (
    ("social", "remote", 240, 37),
    ("roads", "local", 200, 43),
)
"""(name, hosting side, size, seed): one power-law graph served over
HTTP, one random graph in-process — every query crosses the router."""

TRAFFIC = TrafficConfig(
    seed=4242,
    zipf_s=1.1,
    hot_pairs=12,
    cold_fraction=0.15,
    kind_mix={"path": 0.6, "reachability": 0.25, "bounded_hop": 0.15},
    graph_weights={"social": 3.0, "roads": 1.0},
    max_hops_range=(2, 5),
)


def _graphs():
    graphs = {}
    for name, _, size, seed in GRAPH_SPECS:
        if name == "social":
            graphs[name] = power_law_graph(scaled(size), edges_per_node=2,
                                           seed=seed)
        else:
            graphs[name] = random_graph(scaled(size), avg_degree=2.5,
                                        seed=seed)
    return graphs


def _seed_catalog(catalog_path, names, graphs):
    with PathService(catalog_path=catalog_path, cache_size=0) as service:
        for name in names:
            service.add_graph(
                name, graphs[name], backend="sqlite",
                db_path=os.path.join(catalog_path, f"{name}.db"))
            service.build_segtable(name, lthd=LTHD)


def _nodes_of(graphs):
    return {name: graph.nodes() for name, graph in graphs.items()}


def run_experiment(tmp_dir):
    graphs = _graphs()

    # Gate 3 first, cheapest: the stream must be seed-deterministic.
    replay = [list(TrafficGenerator(TRAFFIC, _nodes_of(graphs)).queries(50))
              for _ in range(2)]
    assert replay[0] == replay[1], "traffic stream is not seed-deterministic"

    remote_catalog = os.path.join(tmp_dir, "remote-shard")
    local_catalog = os.path.join(tmp_dir, "local-shard")
    _seed_catalog(remote_catalog, ("social",), graphs)
    _seed_catalog(local_catalog, ("roads",), graphs)

    remote_service = PathService.open(remote_catalog, shard_id="remote-shard")
    server = ShardServer(remote_service, port=0, own_service=True).start()
    remote_name = f"{server.host}:{server.port}"
    registry = MetricsRegistry()
    try:
        with ShardRouter.open([server.url, local_catalog],
                              names=[remote_name, "local"],
                              shared_cache_size=2048) as router:
            assert router.owner("social") == remote_name
            assert router.owner("roads") == "local"
            generator = TrafficGenerator(TRAFFIC, _nodes_of(graphs))
            report = run_traffic(router, generator, NUM_QUERIES,
                                 reference=graphs, registry=registry)
            scrapes = _scrape_metrics(server, router, remote_name)
    finally:
        server.close()

    # Gate 5a: the verdict's percentiles ARE the registry's histogram
    # estimates — nothing is computed from an ad-hoc latency list.
    summary = registry.summary(METRIC_TRAFFIC_LATENCY_MS)
    assert report.latency_ms["count"] == int(summary["count"])
    assert report.latency_ms["p95"] == round(summary["p95"], 3)

    slo = SLO(p95_ms=P95_SLO_MS, max_error_rate=0.0, max_wrong_answers=0)
    met = slo.apply(report)

    overhead_pct = _instrumentation_overhead_pct(report)

    rows = [{
        "kind": kind,
        "queries": summary["count"],
        "p50_ms": summary["p50"],
        "p95_ms": summary["p95"],
        "p99_ms": summary["p99"],
    } for kind, summary in report.per_kind_latency_ms.items()]
    rows.append({
        "kind": "ALL",
        "queries": report.latency_ms["count"],
        "p50_ms": report.latency_ms["p50"],
        "p95_ms": report.latency_ms["p95"],
        "p99_ms": report.latency_ms["p99"],
    })
    return rows, report, met, remote_name, scrapes, overhead_pct


def _scrape_metrics(server, router, remote_name):
    """End-of-run ``/metrics`` Prometheus text from both shards.

    The remote shard is scraped over its real HTTP surface; the local
    in-process shard is lifted behind an ephemeral ``own_service=False``
    server for the scrape so both snapshots travel the same wire.
    """
    scrapes = {remote_name: ShardClient(server.url).metrics_text()}
    local_server = ShardServer(router.transport("local").service,
                               port=0, own_service=False).start()
    try:
        scrapes["local"] = ShardClient(local_server.url).metrics_text()
    finally:
        local_server.close()
    return scrapes


def _instrumentation_overhead_pct(report):
    """Micro-benchmarked cost of one query's worth of instrumentation
    (counter inc + histogram observe + one timer), as a percentage of
    the run's mean query latency."""
    bench = MetricsRegistry()
    rounds = 2000
    with timer() as took:
        for _ in range(rounds):
            bench.counter(METRIC_TRAFFIC_QUERIES, {"kind": "path"}).inc()
            with timer():
                pass
            bench.histogram(METRIC_TRAFFIC_LATENCY_MS,
                            {"kind": "path"}).observe(1.0)
    per_query_ms = took.seconds * 1000.0 / rounds
    mean_ms = report.latency_ms["mean"] or 1e-9
    return round(per_query_ms / mean_ms * 100.0, 3)


def _write_json(report, met, remote_name, scrapes, overhead_pct):
    payload = {
        "benchmark": "traffic_slo",
        "backend": "sqlite (one shard behind HTTP on an ephemeral port)",
        "num_queries": NUM_QUERIES,
        "lthd": LTHD,
        "shards": [remote_name, "local"],
        "remote_shards": [remote_name],
        "slo_met": met,
        "observability_overhead_pct": overhead_pct,
        "metrics_scrapes": scrapes,
        **report.as_dict(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "traffic_slo.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path, payload


def test_traffic_meets_slo(benchmark, tmp_path):
    rows, report, met, remote_name, scrapes, overhead_pct = \
        benchmark.pedantic(
            run_experiment, args=(str(tmp_path),), rounds=1, iterations=1)
    _, payload = _write_json(report, met, remote_name, scrapes,
                             overhead_pct)
    write_report(
        "traffic_slo",
        paper_reference(
            "Not in the paper — PR-7 traffic load test with SLO gates",
            [
                f"{NUM_QUERIES} Zipf-skewed queries (seed "
                f"{TRAFFIC.seed}) across 2 shards, one behind HTTP",
                "Mixed read kinds: path / bounded_hop / reachability, "
                "every answer differentially verified in-memory",
                f"Declared SLO: p95 <= {P95_SLO_MS}ms, zero errors, "
                f"zero wrong answers — verdict stamped in the artifact",
                "Latency percentiles and cache/shard-health snapshots "
                "reported into the consolidated bench-results artifact",
            ],
        ),
        format_table(rows, title=f"Reproduced ({NUM_QUERIES}-query "
                                 f"Zipf traffic, per-kind latency)"),
    )
    # Hard gates, correctness-based so they hold on any runner.
    assert payload["total"] == NUM_QUERIES
    assert payload["wrong_answers"] == 0, payload["wrong_samples"]
    assert payload["errors"] == 0, payload["error_samples"]
    assert set(payload["per_kind"]) == {"path", "bounded_hop",
                                        "reachability"}
    assert payload["hot_queries"] > NUM_QUERIES // 2, \
        "Zipf head must dominate the stream"
    assert payload["slo_met"], payload["slo"]["violations"]
    assert payload["latency_ms"]["count"] == NUM_QUERIES
    assert payload["cache"], "cache snapshot must be reported"
    assert payload["failover"] is not None, \
        "shard-health snapshot must be reported"
    # Gate 5b: both shards' Prometheus scrapes are in the artifact and
    # look like real expositions (the remote one served >= 1 HTTP query).
    assert set(payload["metrics_scrapes"]) == {remote_name, "local"}
    for text in payload["metrics_scrapes"].values():
        assert "# TYPE" in text
    assert "repro_queries_total" in payload["metrics_scrapes"][remote_name]
    # Gate 5c: enabled observability costs <= 5% of a mean query.
    assert payload["observability_overhead_pct"] <= 5.0, \
        f"instrumentation overhead {payload['observability_overhead_pct']}%"
