"""Figure 8(a) — BBFS vs BSEG on the second database platform.

Paper: the comparison on PostgreSQL 9.0 (window function available, no MERGE
statement) mirrors the one on the commercial DBMS-x — BSEG(20) beats BBFS —
showing the approach is not tied to one engine.  SQLite plays the
second-platform role here.
"""

from repro.bench.experiments import build_power_graph, method_comparison
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    graph = build_power_graph(scaled(600))
    rows = []
    for aggregate in method_comparison(graph, ["BBFS", "BSEG"], num_queries=3,
                                       lthd=20.0, backend="sqlite"):
        rows.append(
            {
                "method": aggregate.method,
                "backend": "sqlite",
                "avg_time_s": round(aggregate.avg_time, 4),
                "avg_exps": round(aggregate.avg_expansions, 1),
            }
        )
    return rows


def test_fig8a_second_platform(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig8a_sqlite",
        paper_reference(
            "Figure 8(a) (PostgreSQL, BBFS vs BSEG(20))",
            [
                "Results on the second platform mirror those on DBMS-x",
                "BSEG remains competitive without a native MERGE statement",
            ],
        ),
        format_table(rows, title="Reproduced on SQLite (second platform)"),
    )
    stats = {row["method"]: row for row in rows}
    assert stats["BSEG"]["avg_time_s"] <= stats["BBFS"]["avg_time_s"] * 3
