"""Figure 7(a) — BSDJ vs BBFS vs BSEG(3) on LiveJournal subsets.

Paper: BSEG(3) is the fastest across LiveJournal subsets (about 1/3 of BSDJ
and 1/7 of BBFS at 4M nodes); BBFS degrades fastest as the graph grows.
"""

from repro.bench.experiments import method_comparison
from repro.bench.harness import format_table, paper_reference, scaled, write_report
from repro.graph.datasets import livejournal_standin


def run_experiment():
    rows = []
    for num_nodes in (scaled(600), scaled(1200)):
        graph = livejournal_standin(num_nodes=num_nodes)
        for aggregate in method_comparison(graph, ["BSDJ", "BBFS", "BSEG"],
                                           num_queries=2, lthd=3.0):
            rows.append(
                {
                    "nodes": num_nodes,
                    "method": aggregate.method,
                    "avg_time_s": round(aggregate.avg_time, 4),
                    "avg_exps": round(aggregate.avg_expansions, 1),
                    "avg_visited": round(aggregate.avg_visited, 1),
                }
            )
    return rows


def test_fig7a_livejournal(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig7a_livejournal",
        paper_reference(
            "Figure 7(a) (LiveJournal subsets, BSDJ/BBFS/BSEG(3))",
            [
                "BSEG(3) is fastest: ~1/3 of BSDJ and ~1/7 of BBFS at 4M nodes",
                "BSEG needs about 1/3 of BSDJ's expansions with slightly more visited nodes",
            ],
        ),
        format_table(rows, title="Reproduced (LiveJournal stand-in)"),
    )
    largest = max(row["nodes"] for row in rows)
    stats = {row["method"]: row for row in rows if row["nodes"] == largest}
    assert stats["BSEG"]["avg_exps"] <= stats["BSDJ"]["avg_exps"]
