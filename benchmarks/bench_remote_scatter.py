"""Networked scatter-gather — a mixed local/remote router vs. a monolith.

Not a figure from the paper: this benchmark gates the PR-6 serve layer.
It boots a real two-shard networked topology on localhost (ephemeral
ports, fully hermetic):

* **shard A** runs behind a :class:`~repro.serve.ShardServer` — an HTTP
  process boundary speaking the serve wire protocol — and is attached
  over the ``"remote"`` transport;
* **shard B** is an ordinary in-process catalog shard;

then the same mixed-graph batch runs against a single monolithic
:class:`PathService` and through the router.  The hard gates, all
timing-free so they hold on any runner:

1. the mixed local/remote scatter-gather merge is **bit-identical** to
   the monolith at every concurrency level;
2. killing the replicated graph's owning server **mid-workload** still
   completes the batch via replica failover with **zero wrong answers**
   (and the detour is visible in the router stats);
3. remote per-shard latency (wall/queue/execute seconds over the wire)
   is reported into ``benchmarks/results/remote_scatter.json`` for the
   consolidated ``bench-results`` CI artifact.
"""

import json
import os
import random

from repro.bench.harness import (
    RESULTS_DIR,
    format_table,
    paper_reference,
    scaled,
    write_report,
)
from repro.graph.generators import power_law_graph
from repro.serve import ShardServer
from repro.service import PathService
from repro.shard import ShardRouter

NUM_QUERIES = 48
LTHD = 3.0
CONCURRENCY_LEVELS = (1, 4)

GRAPH_SPECS = (
    ("alpha", "remote", 300, 37),
    ("beta", "remote", 240, 41),
    ("gamma", "local", 280, 43),
)
"""(name, hosting side, size, seed) for the three benchmark graphs.
``alpha`` is additionally replicated onto the local shard, so the
failover leg has somewhere to go when its owning server dies."""


def _graphs():
    return {name: power_law_graph(scaled(size), edges_per_node=2, seed=seed)
            for name, _, size, seed in GRAPH_SPECS}


def _batch_queries(graphs, count, seed=13):
    rng = random.Random(seed)
    names = sorted(graphs)
    queries = []
    for _ in range(count):
        name = rng.choice(names)
        nodes = sorted(graphs[name].nodes())
        queries.append((name, rng.choice(nodes), rng.choice(nodes)))
    return queries


def _shapes(results):
    return [(None if r is None else (r.distance, tuple(r.path)))
            for r in results]


def _seed_catalog(catalog_path, names, graphs):
    with PathService(catalog_path=catalog_path, cache_size=0) as service:
        for name in names:
            service.add_graph(
                name, graphs[name], backend="sqlite",
                db_path=os.path.join(catalog_path, f"{name}.db"))
            service.build_segtable(name, lthd=LTHD)


def run_experiment(tmp_dir):
    graphs = _graphs()
    queries = _batch_queries(graphs, NUM_QUERIES)
    remote_catalog = os.path.join(tmp_dir, "remote-shard")
    local_catalog = os.path.join(tmp_dir, "local-shard")
    _seed_catalog(remote_catalog, ("alpha", "beta"), graphs)
    # alpha is replicated on the local shard (identical content, so
    # identical fingerprint): the failover target.
    _seed_catalog(local_catalog, ("gamma", "alpha"), graphs)

    # -- monolith baseline --------------------------------------------------------
    baseline_shapes = None
    monolith_rows = []
    with PathService(cache_size=0) as service:
        for name, _, _, _ in GRAPH_SPECS:
            service.add_graph(name, graphs[name], backend="sqlite",
                              db_path=os.path.join(tmp_dir, f"mono-{name}.db"))
            service.build_segtable(name, lthd=LTHD)
        for level in CONCURRENCY_LEVELS:
            batch = service.shortest_path_many(queries, concurrency=level)
            shapes = _shapes(batch.results)
            if baseline_shapes is None:
                baseline_shapes = shapes
            assert shapes == baseline_shapes
            monolith_rows.append({
                "session": "monolith", "concurrency": level,
                "wall_s": round(batch.stats.total_time, 4),
                "executed": batch.stats.executed,
                "identical": True,
            })

    # -- networked router: one remote shard behind HTTP, one local ----------------
    router_rows = []
    per_shard = {}
    identical = True
    remote_service = PathService.open(remote_catalog, cache_size=0,
                                      shard_id="remote-shard")
    server = ShardServer(remote_service, port=0, own_service=True).start()
    remote_name = f"{server.host}:{server.port}"
    failover = {}
    try:
        with ShardRouter.open([server.url, local_catalog],
                              names=[remote_name, "local"],
                              remote_retries=0, cache_size=0) as router:
            assert len(router.shards()) == 2
            assert router.owner("alpha") == remote_name
            assert router.owner("gamma") == "local"
            for level in CONCURRENCY_LEVELS:
                scatter = router.shortest_path_many(queries,
                                                    concurrency=level)
                level_identical = _shapes(scatter.results) == baseline_shapes
                identical = identical and level_identical
                assert level_identical, (
                    f"networked router concurrency={level} diverged from "
                    f"the monolith"
                )
                router_rows.append({
                    "session": "remote-router", "concurrency": level,
                    "wall_s": round(scatter.stats.total_time, 4),
                    "executed": scatter.stats.executed,
                    "identical": level_identical,
                })
                per_shard[f"concurrency_{level}"] = {
                    shard: {
                        "transport": ("remote" if shard == remote_name
                                      else "inprocess"),
                        "wall_s": round(stats.total_time, 4),
                        "queue_s": round(stats.queue_time, 4),
                        "execute_s": round(stats.execute_time, 4),
                        "queries": stats.total,
                        "executed": stats.executed,
                    }
                    for shard, stats in sorted(
                        scatter.stats.per_shard.items())
                }

            # -- failover leg: kill the owner mid-workload --------------------
            alpha_queries = [q for q in queries if q[0] == "alpha"]
            expected_alpha = [
                shape for query, shape in zip(queries, baseline_shapes)
                if query[0] == "alpha"]
            server.close()  # alpha's owning server dies
            rescued = router.shortest_path_many(alpha_queries)
            wrong = sum(1 for got, want in zip(_shapes(rescued.results),
                                              expected_alpha)
                        if got != want)
            failover = {
                "killed_shard": remote_name,
                "rescue_shard": "local",
                "queries": len(alpha_queries),
                "wrong_answers": wrong,
                "failovers": rescued.stats.failovers,
                "transport_errors": rescued.stats.transport_errors,
                "answered_by": sorted(set(rescued.shard_of)),
            }
            assert wrong == 0, (
                f"failover produced {wrong} wrong answers"
            )
            assert set(rescued.shard_of) == {"local"}
            assert rescued.stats.per_shard_errors.get(remote_name, 0) >= 1
            router_rows.append({
                "session": "failover", "concurrency": 1,
                "wall_s": round(rescued.stats.total_time, 4),
                "executed": rescued.stats.executed,
                "identical": wrong == 0,
            })
    finally:
        server.close()

    summary = {
        "shards": [remote_name, "local"],
        "num_shards": 2,
        "remote_shards": [remote_name],
        "identical": identical,
        "per_shard_latency": per_shard,
        "failover": failover,
    }
    return monolith_rows + router_rows, summary


def _write_json(rows, summary):
    payload = {
        "benchmark": "remote_scatter",
        "backend": "sqlite (one shard behind HTTP on an ephemeral port)",
        "num_queries": NUM_QUERIES,
        "lthd": LTHD,
        "concurrency_levels": list(CONCURRENCY_LEVELS),
        "sessions": rows,
        **summary,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "remote_scatter.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path, payload


def test_remote_scatter_matches_monolith(benchmark, tmp_path):
    rows, summary = benchmark.pedantic(
        run_experiment, args=(str(tmp_path),), rounds=1, iterations=1)
    _, payload = _write_json(rows, summary)
    write_report(
        "remote_scatter",
        paper_reference(
            "Not in the paper — PR-6 networked shard serving",
            [
                "One shard served over HTTP/JSON on an ephemeral localhost "
                "port, one in-process shard, one router over both",
                "Mixed local/remote scatter-gather is bit-identical to a "
                "monolithic service at every concurrency level (asserted)",
                "Killing the replicated graph's owning server mid-workload "
                "completes the batch via replica failover with zero wrong "
                "answers (asserted)",
                "Per-shard latency (remote transport included) reported "
                "into the consolidated bench-results artifact",
            ],
        ),
        format_table(rows, title="Reproduced (48-query mixed batch)"),
    )
    # Hard gates, timing-free so they hold on any runner.
    assert payload["num_shards"] >= 2
    assert payload["remote_shards"], "at least one shard must be networked"
    assert payload["identical"]
    assert payload["failover"]["wrong_answers"] == 0
    assert payload["failover"]["transport_errors"] >= 1
    assert payload["per_shard_latency"], "per-shard latency must be reported"
