"""Figure 6(b) — query time by phase (PE / SC / FPR) for BSDJ.

Paper: the path expansion phase (PE, the F/E/M statements) dominates the
query time; statistics collection (SC) and full path recovery (FPR) are
minor.
"""

from repro.bench.experiments import build_power_graph, phase_breakdown
from repro.bench.harness import format_table, paper_reference, scaled, write_report


def run_experiment():
    graph = build_power_graph(scaled(700))
    phases = phase_breakdown(graph, method="BSDJ", num_queries=3)
    return [{"phase": name, "avg_time_s": round(seconds, 5)}
            for name, seconds in sorted(phases.items())]


def test_fig6b_phase_breakdown(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig6b_phases",
        paper_reference(
            "Figure 6(b) (BSDJ time by phase)",
            [
                "Path expansion (PE) consumes most of the query time",
                "Statistics collection (SC) and path recovery (FPR) are small",
            ],
        ),
        format_table(rows, title="Reproduced per-phase time"),
    )
    times = {row["phase"]: row["avg_time_s"] for row in rows}
    assert times["PE"] >= times.get("FPR", 0.0)
