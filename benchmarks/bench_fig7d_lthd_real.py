"""Figure 7(d) — BSEG query time vs lthd on the GoogleWeb and DBLP stand-ins.

Paper: on the real graphs a smaller lthd (6 or 8) is more suitable than the
larger values that help Power graphs; very large thresholds hurt because the
pre-computed segments blow up the search space.
"""

from repro.bench.experiments import lthd_sweep
from repro.bench.harness import format_table, paper_reference, scaled, write_report
from repro.graph.datasets import dblp_standin, googleweb_standin


def run_experiment():
    rows = []
    for name, graph in (
        ("googleweb", googleweb_standin(num_nodes=scaled(600))),
        ("dblp", dblp_standin(num_nodes=scaled(500))),
    ):
        for row in lthd_sweep(graph, [2.0, 6.0, 10.0], num_queries=2):
            rows.append({"graph": name, **row})
    return rows


def test_fig7d_lthd_real_graphs(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_report(
        "fig7d_lthd_real",
        paper_reference(
            "Figure 7(d) (GoogleWeb / DBLP, BSEG vs lthd in {2,4,6,8,10})",
            [
                "A smaller lthd (6-8) is more suitable on the real graphs",
                "Index size (and search space) grows with lthd, eventually hurting",
            ],
        ),
        format_table(rows, title="Reproduced lthd sweep (real-graph stand-ins)"),
    )
    for graph_name in {row["graph"] for row in rows}:
        series = [row for row in rows if row["graph"] == graph_name]
        assert series[-1]["segments"] >= series[0]["segments"]
